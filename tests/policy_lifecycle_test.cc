// The online policy lifecycle: PolicyCatalog mutations, incremental
// re-encoding, epoch-snapshot adoption, and the end-to-end equivalence
// guarantees:
//
//  * Incremental re-encode touches exactly the affected connected
//    components; untouched users keep their SVs (and keys) verbatim.
//  * After every re-encode, PRQ/PkNN answers on the incrementally re-keyed
//    index are identical to a from-scratch rebuild of the mutated corpus —
//    for 1-shard and 4-shard engines.
//  * Continuous queries reconcile across epochs with identical event
//    streams on 1 and 4 shards.
//  * UserPairKey packing cannot collide for extreme 32-bit ids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "engine/sharded_engine.h"
#include "eval/runner.h"
#include "eval/workload.h"
#include "policy/policy_catalog.h"
#include "policy/policy_generator.h"
#include "service/service.h"

namespace peb {
namespace {

using engine::ShardedPebEngine;
using eval::MakeEngine;
using eval::MakePknnQueries;
using eval::MakePrqQueries;
using eval::QuerySetOptions;
using eval::Workload;
using eval::WorkloadParams;
using service::MovingObjectService;
using service::QueryRequest;
using service::QueryResponse;

Lpp WideOpenPolicy(RoleId role) {
  Lpp p;
  p.role = role;
  // Truly everywhere: projected positions can drift outside the space
  // domain, and the policy must keep covering them.
  p.locr = Rect{{-1e9, -1e9}, {1e9, 1e9}};
  p.tint = TimeOfDayInterval::AllDay();
  return p;
}

CatalogOptions SmallCatalogOptions(size_t num_users) {
  CatalogOptions opt;
  opt.num_users = num_users;
  opt.compat.space = Rect::Space(1000.0);
  return opt;
}

// ---------------------------------------------------------------------------
// Catalog unit behavior
// ---------------------------------------------------------------------------

TEST(PolicyCatalog, CleanReencodeKeepsEpochAndSnapshot) {
  PolicyStore store;
  RoleRegistry roles;
  roles.RegisterRole("friend");
  PolicyCatalog catalog(std::move(store), std::move(roles),
                        SmallCatalogOptions(8));
  auto before = catalog.snapshot();
  ASSERT_EQ(before->epoch(), 0u);

  auto result = catalog.Reencode();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->snapshot.get(), before.get());
  EXPECT_EQ(result->stats.epoch, 0u);
  EXPECT_TRUE(result->rekeyed.empty());
  EXPECT_EQ(catalog.epoch(), 0u);
}

TEST(PolicyCatalog, MutationValidation) {
  PolicyStore store;
  RoleRegistry roles;
  RoleId role = roles.RegisterRole("friend");
  PolicyCatalog catalog(std::move(store), std::move(roles),
                        SmallCatalogOptions(4));

  EXPECT_TRUE(catalog.AddPolicy(0, 9, WideOpenPolicy(role)).IsInvalidArgument());
  EXPECT_TRUE(catalog.AddPolicy(9, 0, WideOpenPolicy(role)).IsInvalidArgument());
  EXPECT_TRUE(catalog.AddPolicy(1, 1, WideOpenPolicy(role)).IsInvalidArgument());
  EXPECT_TRUE(catalog.AddPolicy(0, 1, WideOpenPolicy(kInvalidRoleId))
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog.AddPolicy(0, 1, WideOpenPolicy(role)).ok());
  EXPECT_EQ(catalog.dirty_count(), 2u);

  auto removed = catalog.RemovePolicies(0, 1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  auto removed_again = catalog.RemovePolicies(0, 1);
  ASSERT_TRUE(removed_again.ok());
  EXPECT_EQ(*removed_again, 0u);
}

TEST(PolicyCatalog, IncrementalTouchesOnlyAffectedComponent) {
  // Two separate cliques {0,1,2} and {3,4,5}, plus isolated 6 and 7.
  PolicyStore store;
  RoleRegistry roles;
  RoleId role = roles.RegisterRole("friend");
  auto connect = [&](UserId a, UserId b) {
    store.Add(a, b, WideOpenPolicy(role));
    roles.AssignRole(a, b, role);
  };
  connect(0, 1);
  connect(1, 2);
  connect(3, 4);
  connect(4, 5);

  PolicyCatalog catalog(std::move(store), std::move(roles),
                        SmallCatalogOptions(8));
  auto epoch0 = catalog.snapshot();

  // Mutate inside the second clique only.
  ASSERT_TRUE(catalog.AddPolicy(5, 3, WideOpenPolicy(role)).ok());
  auto result = catalog.Reencode();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.epoch, 1u);
  EXPECT_EQ(result->stats.component_users, 3u);  // {3, 4, 5}.

  auto epoch1 = result->snapshot;
  // Untouched users keep raw SVs and quantized SVs verbatim.
  for (UserId u : {0u, 1u, 2u, 6u, 7u}) {
    EXPECT_EQ(epoch0->sv(u), epoch1->sv(u)) << "user " << u;
    EXPECT_EQ(epoch0->quantized_sv(u), epoch1->quantized_sv(u))
        << "user " << u;
  }
  // Every re-keyed user lies in the affected component.
  for (UserId u : result->rekeyed) {
    EXPECT_TRUE(u == 3 || u == 4 || u == 5) << "re-keyed user " << u;
  }
  // The component's new values sit above every pre-existing SV, keeping
  // them collision-free with untouched users.
  double old_max = 0.0;
  for (UserId u = 0; u < 8; ++u) old_max = std::max(old_max, epoch0->sv(u));
  for (UserId u : {3u, 4u, 5u}) EXPECT_GT(epoch1->sv(u), old_max);

  // Friend lists reflect the new grant at the new epoch.
  bool found = false;
  for (const FriendEntry& f : epoch1->FriendsOf(3)) {
    if (f.uid == 5) {
      found = true;
      EXPECT_EQ(f.qsv, epoch1->quantized_sv(5));
    }
  }
  EXPECT_TRUE(found) << "5 must appear in 3's friend list after the grant";
  EXPECT_TRUE(epoch0->FriendsOf(3).empty());
}

TEST(PolicyCatalog, IncrementalMatchesSubgraphRebuild) {
  // One chain 0-1-2 mutated; the incremental values must equal a full
  // Figure-5 run over the subgraph, translated to the fresh base.
  PolicyStore store;
  RoleRegistry roles;
  RoleId role = roles.RegisterRole("friend");
  store.Add(0, 1, WideOpenPolicy(role));
  roles.AssignRole(0, 1, role);

  PolicyCatalog catalog(std::move(store), std::move(roles),
                        SmallCatalogOptions(3));
  ASSERT_TRUE(catalog.AddPolicy(1, 2, WideOpenPolicy(role)).ok());
  auto result = catalog.Reencode();
  ASSERT_TRUE(result.ok());
  auto snap = result->snapshot;

  // Reference: Figure-5 over the mutated graph {0-1, 1-2} in isolation.
  const PolicyStore& mutated = catalog.store();
  CompatibilityOptions compat = SmallCatalogOptions(3).compat;
  SequenceAssignment ref = AssignSequenceValues(mutated, 3, compat);

  // Translation invariance: pairwise SV offsets match the reference.
  for (UserId a = 0; a < 3; ++a) {
    for (UserId b = 0; b < 3; ++b) {
      EXPECT_NEAR(snap->sv(a) - snap->sv(b), ref.sv[a] - ref.sv[b], 1e-12)
          << "pair (" << a << ", " << b << ")";
    }
  }
}

TEST(UserPairKey, ExtremeIdsDoNotCollide) {
  PolicyStore store;
  RoleRegistry roles;
  RoleId role = roles.RegisterRole("friend");
  const UserId hi = std::numeric_limits<UserId>::max() - 1;
  store.Add(hi, 1, WideOpenPolicy(role));
  store.Add(1, hi, WideOpenPolicy(role));
  store.Add(hi, 2, WideOpenPolicy(role));
  EXPECT_EQ(store.Get(hi, 1).size(), 1u);
  EXPECT_EQ(store.Get(1, hi).size(), 1u);
  EXPECT_EQ(store.Get(hi, 2).size(), 1u);
  EXPECT_EQ(store.Get(2, hi).size(), 0u);
  EXPECT_EQ(store.RemoveAll(hi, 1), 1u);
  EXPECT_EQ(store.Get(1, hi).size(), 1u);
}

// ---------------------------------------------------------------------------
// Whole-stack equivalence under randomized churn
// ---------------------------------------------------------------------------

WorkloadParams ChurnParams(uint64_t seed) {
  WorkloadParams p;
  p.num_users = 500;
  p.policies_per_user = 8;
  p.grid_bits = 8;
  p.seed = seed;
  return p;
}

/// One independent lifecycle instance: its own catalog (same corpus), an
/// engine built from the catalog's snapshot, and a lifecycle service.
struct Instance {
  std::unique_ptr<PolicyCatalog> catalog;
  std::unique_ptr<ShardedPebEngine> engine;
  std::unique_ptr<MovingObjectService> svc;
  std::unique_ptr<UpdateStream> stream;
};

Instance MakeInstance(const Workload& w, size_t shards) {
  Instance inst;
  CatalogOptions cat = w.catalog().options();
  inst.catalog = std::make_unique<PolicyCatalog>(w.store(), w.roles(), cat);
  engine::EngineOptions opts;
  opts.num_shards = shards;
  opts.num_threads = 2;
  opts.buffer_pages = w.params().buffer_pages;
  opts.tree = eval::PebOptionsFor(w.params());
  inst.engine = std::make_unique<ShardedPebEngine>(
      opts, &inst.catalog->store(), &inst.catalog->roles(),
      inst.catalog->snapshot());
  EXPECT_TRUE(inst.engine->LoadDataset(w.dataset()).ok());
  inst.svc = std::make_unique<MovingObjectService>(inst.engine.get(),
                                                   inst.catalog.get());
  inst.stream = eval::CloneUniformUpdateStream(w);
  return inst;
}

/// A deterministic mutation schedule (same for every instance).
struct Mutation {
  bool add = true;
  UserId owner = 0;
  UserId peer = 0;
  Lpp policy;
};

std::vector<Mutation> MakeSchedule(const Workload& w, size_t count,
                                   uint64_t seed) {
  PolicyGeneratorOptions lpp_opt;
  lpp_opt.space = Rect::Space(w.params().space_side);
  lpp_opt.time_domain = w.params().time_domain;
  Rng rng(seed);
  RoleId role = 0;  // The generator's "friend" role.
  size_t n = w.params().num_users;
  std::vector<Mutation> schedule;
  for (size_t i = 0; i < count; ++i) {
    Mutation m;
    m.add = (i % 3) != 2;  // 2/3 grants, 1/3 revocations.
    m.owner = static_cast<UserId>(rng.NextBelow(n));
    if (m.add) {
      m.peer = m.owner;
      while (m.peer == m.owner) {
        m.peer = static_cast<UserId>(rng.NextBelow(n));
      }
      m.policy = RandomLpp(rng, role, lpp_opt);
    } else {
      // Revoke an existing grant when one exists (resolved per instance —
      // stores stay identical, so the pick below matches everywhere).
      UserId u = m.owner;
      for (size_t probe = 0; probe < n; ++probe) {
        if (!w.store().PeersOf(u).empty()) break;
        u = static_cast<UserId>((u + 1) % n);
      }
      m.owner = u;
      auto peers = w.store().PeersOf(u);
      m.peer = peers.empty() ? m.owner
                             : peers[rng.NextBelow(peers.size())];
    }
    schedule.push_back(m);
  }
  return schedule;
}

TEST(PolicyLifecycle, ChurnedEnginesMatchFullRebuildAcrossShardCounts) {
  const size_t kRounds = 4;
  const size_t kMutationsPerRound = 6;
  const size_t kUpdatesPerRound = 120;
  Workload w = Workload::Build(ChurnParams(51));

  Instance single = MakeInstance(w, 1);
  Instance sharded = MakeInstance(w, 4);
  ASSERT_NE(single.stream, nullptr);
  ASSERT_NE(sharded.stream, nullptr);

  // Standing queries on both instances (same registration order).
  Rect district = Rect::CenteredSquare({500, 500}, 300.0);
  for (Instance* inst : {&single, &sharded}) {
    QueryResponse reg = inst->svc->Execute(
        QueryRequest::RegisterContinuous(11, district, w.now()));
    ASSERT_TRUE(reg.ok()) << reg.status;
  }

  QuerySetOptions qopt;
  qopt.count = 25;
  qopt.seed = 77;
  auto prq = MakePrqQueries(w, qopt);
  auto knn = MakePknnQueries(w, qopt);

  auto schedule =
      MakeSchedule(w, kRounds * kMutationsPerRound, /*seed=*/0xC0FFEE);
  size_t next_mutation = 0;
  uint64_t expected_epoch = 0;
  Timestamp now = w.now();

  for (size_t round = 0; round < kRounds; ++round) {
    // Interleave index updates with policy churn.
    std::vector<ContinuousQueryEvent> ev_single, ev_sharded;
    for (Instance* inst : {&single, &sharded}) {
      auto session = inst->svc->OpenUpdateSession(inst->stream.get(), 64);
      ASSERT_TRUE(session.Apply(kUpdatesPerRound).ok());
      now = session.last_event_time();
    }

    for (size_t i = 0; i < kMutationsPerRound; ++i) {
      const Mutation& m = schedule[next_mutation++];
      uint64_t epoch_single = 0, epoch_sharded = 0;
      for (Instance* inst : {&single, &sharded}) {
        QueryResponse resp;
        if (m.add) {
          resp = inst->svc->Execute(
              QueryRequest::AddPolicy(m.owner, m.peer, m.policy, now));
        } else if (m.owner != m.peer) {
          resp = inst->svc->Execute(
              QueryRequest::RemovePolicy(m.owner, m.peer, now));
        } else {
          continue;  // Schedule found nothing to revoke.
        }
        ASSERT_TRUE(resp.ok()) << resp.status;
        (inst == &single ? epoch_single : epoch_sharded) = resp.epoch;
        // A grant always dirties; a revocation of nothing keeps the epoch.
        if (inst == &single) {
          EXPECT_GE(resp.epoch, expected_epoch);
          expected_epoch = resp.epoch;
        }
      }
      // Both instances publish identical epochs and identical stats.
      EXPECT_EQ(epoch_single, epoch_sharded);
    }

    // Reference: from-scratch rebuild of the mutated corpus (fresh catalog
    // + fresh 2-shard engine hosting the same motion state).
    Instance rebuilt;
    CatalogOptions cat = w.catalog()->options();
    rebuilt.catalog = std::make_unique<PolicyCatalog>(
        single.catalog->store(), single.catalog->roles(), cat);
    engine::EngineOptions opts;
    opts.num_shards = 2;
    opts.num_threads = 2;
    opts.buffer_pages = w.params().buffer_pages;
    opts.tree = eval::PebOptionsFor(w.params());
    rebuilt.engine = std::make_unique<ShardedPebEngine>(
        opts, &rebuilt.catalog->store(), &rebuilt.catalog->roles(),
        rebuilt.catalog->snapshot());
    for (size_t u = 0; u < w.params().num_users; ++u) {
      auto obj = single.engine->GetObject(static_cast<UserId>(u));
      ASSERT_TRUE(obj.ok());
      ASSERT_TRUE(rebuilt.engine->Insert(*obj).ok());
    }

    // PRQ/PkNN answers must be identical: 1-shard churned == 4-shard
    // churned == from-scratch rebuild.
    for (const auto& query : prq) {
      auto a = single.engine->RangeQuery(query.issuer, query.range, now);
      auto b = sharded.engine->RangeQuery(query.issuer, query.range, now);
      auto c = rebuilt.engine->RangeQuery(query.issuer, query.range, now);
      ASSERT_TRUE(a.ok() && b.ok() && c.ok());
      EXPECT_EQ(*a, *b) << "round " << round;
      EXPECT_EQ(*a, *c) << "round " << round;
    }
    for (const auto& query : knn) {
      auto a = single.engine->KnnQuery(query.issuer, query.qloc, query.k,
                                       now);
      auto b = sharded.engine->KnnQuery(query.issuer, query.qloc, query.k,
                                        now);
      auto c = rebuilt.engine->KnnQuery(query.issuer, query.qloc, query.k,
                                        now);
      ASSERT_TRUE(a.ok() && b.ok() && c.ok());
      ASSERT_EQ(a->size(), b->size()) << "round " << round;
      ASSERT_EQ(a->size(), c->size()) << "round " << round;
      for (size_t i = 0; i < a->size(); ++i) {
        EXPECT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-9);
        EXPECT_NEAR((*a)[i].distance, (*c)[i].distance, 1e-9);
      }
    }

    // Continuous queries: identical answers and event streams, 1 vs 4
    // shards, across the epoch transitions.
    for (Instance* inst : {&single, &sharded}) {
      ASSERT_TRUE(inst->svc->AdvanceContinuous(now).ok());
      auto events = inst->svc->TakeContinuousEvents();
      (inst == &single ? ev_single : ev_sharded) = std::move(events);
    }
    EXPECT_EQ(ev_single, ev_sharded) << "round " << round;
    EXPECT_EQ(*single.svc->ContinuousResult(1),
              *sharded.svc->ContinuousResult(1))
        << "round " << round;
  }
  EXPECT_GT(expected_epoch, 0u);
}

// ---------------------------------------------------------------------------
// Deferred mode + single-tree service path
// ---------------------------------------------------------------------------

TEST(PolicyLifecycle, DeferredMutationsFlushInOneReencode) {
  Workload w = Workload::Build(ChurnParams(52));
  MovingObjectService& svc = w.peb_service();
  RoleId role = w.catalog()->DefineRole("friend");

  uint64_t epoch0 = w.catalog()->epoch();
  QueryResponse r1 = svc.Execute(QueryRequest::AddPolicy(
      3, 4, WideOpenPolicy(role), w.now(), /*reencode_now=*/false));
  ASSERT_TRUE(r1.ok()) << r1.status;
  EXPECT_EQ(r1.epoch, epoch0);  // Deferred: epoch unchanged.
  QueryResponse r2 = svc.Execute(QueryRequest::AddPolicy(
      5, 6, WideOpenPolicy(role), w.now(), /*reencode_now=*/false));
  ASSERT_TRUE(r2.ok());
  EXPECT_GE(w.catalog()->dirty_count(), 4u);

  QueryResponse flush = svc.Execute(QueryRequest::Reencode(w.now()));
  ASSERT_TRUE(flush.ok()) << flush.status;
  EXPECT_EQ(flush.epoch, epoch0 + 1);
  EXPECT_GE(flush.reencode.dirty_users, 4u);
  EXPECT_EQ(w.catalog()->dirty_count(), 0u);
  // The single tree adopted the snapshot: epochs agree.
  EXPECT_EQ(w.peb().encoding_epoch(), epoch0 + 1);

  // The new grant answers queries: owner 3 became visible to peer 4.
  auto obj = w.peb().GetObject(3);
  ASSERT_TRUE(obj.ok());
  Point pos = obj->PositionAt(w.now());
  Rect window = Rect::CenteredSquare(pos, 10.0);
  QueryResponse prq = svc.Execute(QueryRequest::Prq(4, window, w.now()));
  ASSERT_TRUE(prq.ok());
  EXPECT_TRUE(std::find(prq.ids.begin(), prq.ids.end(), 3) != prq.ids.end());
  EXPECT_EQ(prq.epoch, epoch0 + 1);
}

TEST(PolicyLifecycle, RevocationIsImmediateGrantWaitsForEpoch) {
  Workload w = Workload::Build(ChurnParams(53));
  MovingObjectService& svc = w.peb_service();
  RoleId role = w.catalog()->DefineRole("friend");

  // Pick a pair with no pre-existing grant in either direction (the
  // generated corpus is random), in different generator groups.
  UserId owner = 7, peer = 400;
  while (peer < 500 && (!w.store().Get(owner, peer).empty() ||
                        !w.store().Get(peer, owner).empty())) {
    peer++;
  }
  ASSERT_LT(peer, 500u) << "no unrelated pair found";
  const UserId kOwner = owner, kPeer = peer;

  // Grant deferred: owner not visible to peer yet (the peer's friend list
  // lacks the owner until the epoch publishes).
  QueryResponse grant = svc.Execute(QueryRequest::AddPolicy(
      kOwner, kPeer, WideOpenPolicy(role), w.now(), /*reencode_now=*/false));
  ASSERT_TRUE(grant.ok());
  auto obj = w.peb().GetObject(kOwner);
  ASSERT_TRUE(obj.ok());
  Rect window = Rect::CenteredSquare(obj->PositionAt(w.now()), 10.0);
  QueryResponse before = svc.Execute(QueryRequest::Prq(kPeer, window, w.now()));
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(std::find(before.ids.begin(), before.ids.end(), kOwner) ==
              before.ids.end());

  // Publish: the grant becomes visible.
  ASSERT_TRUE(svc.Execute(QueryRequest::Reencode(w.now())).ok());
  QueryResponse after = svc.Execute(QueryRequest::Prq(kPeer, window, w.now()));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(std::find(after.ids.begin(), after.ids.end(), kOwner) !=
              after.ids.end());

  // Revocation is effective immediately, even deferred: verification reads
  // the live store.
  QueryResponse revoke = svc.Execute(QueryRequest::RemovePolicy(
      kOwner, kPeer, w.now(), /*reencode_now=*/false));
  ASSERT_TRUE(revoke.ok());
  EXPECT_EQ(revoke.removed_policies, 1u);
  QueryResponse gone = svc.Execute(QueryRequest::Prq(kPeer, window, w.now()));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(std::find(gone.ids.begin(), gone.ids.end(), kOwner) ==
              gone.ids.end());
}

TEST(PolicyLifecycle, MutationsNotSupportedWithoutCatalog) {
  Workload w = Workload::Build(ChurnParams(54));
  MovingObjectService svc(&w.peb(), &w.store(), &w.roles(), &w.encoding());
  QueryResponse resp = svc.Execute(
      QueryRequest::AddPolicy(1, 2, WideOpenPolicy(0), w.now()));
  EXPECT_EQ(resp.status.code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace peb
