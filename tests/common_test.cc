#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace peb {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, FactoriesSetCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");

  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status FailIfNegative(int x) {
  PEB_RETURN_NOT_OK(x < 0 ? Status::InvalidArgument("negative") : Status::OK());
  return Status::OK();
}

TEST(Status, ReturnNotOkMacro) {
  EXPECT_TRUE(FailIfNegative(1).ok());
  EXPECT_TRUE(FailIfNegative(-1).IsInvalidArgument());
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(3), 3);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PEB_ASSIGN_OR_RETURN(int h, Half(x));
  PEB_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, AssignOrReturnMacro) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd.
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next64();
    if (va != b.Next64()) all_equal = false;
    if (va != c.Next64()) any_diff_seed_diff = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.Uniform(-5.0, 11.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 11.0);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextBelow(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All residues hit.
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextBoolRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace peb
