// Telemetry tests: histogram percentiles against a sorted-vector oracle,
// concurrent recording (exercised under the TSan CI job), the span tree a
// traced 4-shard PkNN produces, and slow-query-log ring semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "eval/runner.h"
#include "eval/workload.h"
#include "service/service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace peb {
namespace {

using eval::MakeEngine;
using eval::MakePknnQueries;
using eval::QuerySetOptions;
using eval::Workload;
using eval::WorkloadParams;
using service::MovingObjectService;
using service::QueryRequest;
using service::QueryResponse;

double ExactPercentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

// Buckets grow ~19% per step, and percentiles interpolate inside the
// landing bucket, so the estimate must sit within one bucket width of the
// exact order statistic.
void ExpectWithinOneBucket(double estimate, double exact) {
  EXPECT_GT(estimate, exact / 1.19);
  EXPECT_LT(estimate, exact * 1.19);
}

TEST(TelemetryHistogram, PercentilesMatchSortedVectorOracle) {
  telemetry::Histogram h;
  std::mt19937_64 rng(7);
  // Latencies spanning several decades, the shape the log-scale buckets
  // are designed for.
  std::lognormal_distribution<double> dist(0.0, 1.5);
  std::vector<double> values;
  for (size_t i = 0; i < 20000; ++i) {
    double v = dist(rng);
    values.push_back(v);
    h.Record(v);
  }
  telemetry::Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_DOUBLE_EQ(snap.max, *std::max_element(values.begin(), values.end()));
  double exact_sum = 0.0;
  for (double v : values) exact_sum += v;
  EXPECT_NEAR(snap.sum, exact_sum, exact_sum * 1e-9);
  ExpectWithinOneBucket(snap.p50, ExactPercentile(values, 0.50));
  ExpectWithinOneBucket(snap.p95, ExactPercentile(values, 0.95));
  ExpectWithinOneBucket(snap.p99, ExactPercentile(values, 0.99));
}

TEST(TelemetryHistogram, OutOfRangeValuesClampToEdgeBuckets) {
  telemetry::Histogram h;
  h.Record(0.0);     // Below the first bound: lands in bucket 0.
  h.Record(-3.0);    // Negative: also bucket 0, counted not dropped.
  h.Record(1e300);   // Beyond the last bound: last bucket, max exact.
  telemetry::Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.max, 1e300);
}

TEST(TelemetryConcurrency, CountersAndHistogramsAreExactUnderThreads) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter* counter = registry.counter("test.hits");
  telemetry::Gauge* gauge = registry.gauge("test.depth");
  telemetry::Histogram* hist = registry.histogram("test.ms");
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        gauge->Add(1.0);
        gauge->Add(-1.0);
        hist->Record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  telemetry::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
}

TEST(TelemetryRegistry, InstrumentsAreStableAndSnapshotIsNonEmpty) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter* a = registry.counter("same.name");
  telemetry::Counter* b = registry.counter("same.name");
  EXPECT_EQ(a, b);  // Get-or-create: one instrument per name.
  a->Add(5);
  std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"same.name\": 5"), std::string::npos) << json;
  std::string prom = registry.PrometheusText();
  EXPECT_NE(prom.find("same_name 5"), std::string::npos) << prom;
}

size_t SpanDepth(const telemetry::QueryTrace& trace, size_t i) {
  size_t depth = 0;
  while (trace.spans[i].parent != telemetry::TraceSpan::kNoParent) {
    i = trace.spans[i].parent;
    ++depth;
  }
  return depth;
}

TEST(TelemetryTrace, FourShardPknnProducesShardAndRoundSpans) {
  WorkloadParams p;
  p.num_users = 800;
  p.policies_per_user = 10;
  p.grid_bits = 8;
  p.seed = 11;
  Workload w = Workload::Build(p);

  telemetry::MetricsRegistry registry;
  telemetry::TelemetryOptions topts;
  topts.registry = &registry;
  auto engine = MakeEngine(w, /*num_shards=*/4, /*num_threads=*/2,
                           engine::RouterPolicy::kHashUser, topts);
  service::ServiceOptions so;
  so.time_domain = p.time_domain;
  so.telemetry = topts;
  MovingObjectService svc(engine.get(), so);

  QuerySetOptions qs;
  qs.count = 8;
  qs.seed = 21;
  auto knn = MakePknnQueries(w, qs);
  ASSERT_FALSE(knn.empty());

  for (const auto& query : knn) {
    QueryRequest request =
        QueryRequest::Pknn(query.issuer, query.qloc, query.k, query.tq);
    request.options.trace = true;  // On-demand tracing, no sampling needed.
    QueryResponse resp = svc.Execute(request);
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    const telemetry::QueryTrace& trace = resp.trace;
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.name, "pknn");
    EXPECT_EQ(trace.spans[0].name, "service pknn");
    EXPECT_EQ(trace.spans[0].parent, telemetry::TraceSpan::kNoParent);
    EXPECT_GT(trace.total_ms, 0.0);

    // Depth-1 spans are the engine's per-shard tasks; each shard span's
    // children are its enlargement rounds (or the closing vertical scan).
    size_t shard_spans = 0, round_spans = 0;
    IoStats shard_io;
    size_t shard_candidates = 0;
    for (size_t i = 1; i < trace.spans.size(); ++i) {
      const telemetry::TraceSpan& span = trace.spans[i];
      size_t depth = SpanDepth(trace, i);
      if (depth == 1) {
        EXPECT_EQ(span.name.rfind("shard ", 0), 0u) << span.name;
        ++shard_spans;
        shard_io += span.io;
        shard_candidates += span.counters.candidates_examined;
      } else {
        ASSERT_EQ(depth, 2u);
        EXPECT_TRUE(span.name.rfind("round ", 0) == 0 ||
                    span.name == "vertical")
            << span.name;
        ++round_spans;
      }
    }
    EXPECT_GE(shard_spans, 1u);
    EXPECT_LE(shard_spans, 4u);
    EXPECT_GE(round_spans, 1u);

    // The acceptance invariant: per-shard span attribution sums exactly
    // to the response's by-value totals.
    EXPECT_EQ(shard_io.logical_fetches, resp.io.logical_fetches);
    EXPECT_EQ(shard_io.cache_hits, resp.io.cache_hits);
    EXPECT_EQ(shard_io.physical_reads, resp.io.physical_reads);
    EXPECT_EQ(shard_candidates, resp.counters.candidates_examined);
  }

  // The traced queries also fed the registry's service instruments.
  EXPECT_NE(registry.SnapshotJson().find("service.exec_ms"),
            std::string::npos);
}

TEST(TelemetryTrace, ChromeJsonIsWellFormedForSampledQuery) {
  telemetry::TraceBuilder builder("pknn");
  size_t root = builder.StartSpan("service pknn");
  size_t child = builder.StartSpan("shard 0", root);
  builder.Annotate(child, "runs=3");
  builder.EndSpan(child);
  builder.EndSpan(root);
  telemetry::QueryTrace trace = builder.Finish();
  std::string json = trace.ChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("service pknn"), std::string::npos);
  EXPECT_NE(json.find("shard 0"), std::string::npos);
}

telemetry::QueryTrace NamedTrace(const std::string& name) {
  telemetry::TraceBuilder builder(name);
  size_t root = builder.StartSpan(name);
  builder.EndSpan(root);
  return builder.Finish();
}

TEST(TelemetrySlowLog, RingEvictsOldestFirst) {
  telemetry::SlowQueryLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.Record(NamedTrace("q" + std::to_string(i)), 10.0 + i);
  }
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // q0 and q1 were evicted; the survivors are oldest-first.
  EXPECT_EQ(entries[0].trace.name, "q2");
  EXPECT_EQ(entries[1].trace.name, "q3");
  EXPECT_EQ(entries[2].trace.name, "q4");
  EXPECT_LT(entries[0].sequence, entries[1].sequence);
  EXPECT_LT(entries[1].sequence, entries[2].sequence);
  EXPECT_DOUBLE_EQ(entries[2].total_ms, 14.0);
}

TEST(TelemetrySlowLog, ZeroCapacityDropsEverything) {
  telemetry::SlowQueryLog log(0);
  log.Record(NamedTrace("q"), 99.0);
  EXPECT_TRUE(log.Entries().empty());
}

}  // namespace
}  // namespace peb
