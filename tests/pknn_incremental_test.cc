// Incremental PkNN tests: the incremental path (cost-model-seeded radius,
// exact annulus-delta scans, qsv-run coalescing, streaming shard merge
// with retirement) must be observationally identical to the legacy
// Figure-9 round path — for any shard count, for adversarial k values at
// or above the number of matching friends, and while policy-encoding
// epochs transition under the queries. Runs under the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "eval/runner.h"
#include "eval/workload.h"
#include "policy/policy_catalog.h"

namespace peb {
namespace {

using engine::ShardedPebEngine;
using eval::MakeEngine;
using eval::MakePknnQueries;
using eval::PknnQuery;
using eval::QuerySetOptions;
using eval::Workload;
using eval::WorkloadParams;

WorkloadParams SmallParams(uint64_t seed) {
  WorkloadParams p;
  p.num_users = 800;
  p.policies_per_user = 10;
  p.buffer_pages = 50;
  p.grid_bits = 8;
  p.seed = seed;
  return p;
}

/// A single PEB-tree on its own pool with the incremental path forced on
/// or off (the legacy round path is kept behind
/// MovingIndexOptions::incremental_knn exactly for this oracle role).
struct OracleTree {
  OracleTree(const Workload& w, bool incremental) {
    PebTreeOptions opts = eval::PebOptionsFor(w.params());
    opts.index.incremental_knn = incremental;
    pool = std::make_unique<BufferPool>(
        &disk, BufferPoolOptions{w.params().buffer_pages});
    tree = std::make_unique<PebTree>(pool.get(), opts, &w.store(), &w.roles(),
                                     &w.encoding());
    for (const MovingObject& o : w.dataset().objects) {
      EXPECT_TRUE(tree->Insert(o).ok());
    }
  }

  InMemoryDiskManager disk;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<PebTree> tree;
};

/// Sorts a kNN answer by (distance, uid): distances are continuous, so
/// this only normalizes the order of exact ties, which merges may permute.
std::vector<Neighbor> Normalized(std::vector<Neighbor> v) {
  std::sort(v.begin(), v.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.uid < b.uid;
  });
  return v;
}

void ExpectBitIdentical(const std::vector<Neighbor>& want,
                        const std::vector<Neighbor>& got,
                        const char* context, size_t qi) {
  std::vector<Neighbor> wn = Normalized(want);
  std::vector<Neighbor> gn = Normalized(got);
  ASSERT_EQ(gn.size(), wn.size()) << context << " query " << qi;
  for (size_t r = 0; r < wn.size(); ++r) {
    EXPECT_EQ(gn[r].uid, wn[r].uid) << context << " query " << qi
                                    << " rank " << r;
    // Bit-identical: the same candidate's distance is computed from the
    // same stored record on either path.
    EXPECT_EQ(gn[r].distance, wn[r].distance)
        << context << " query " << qi << " rank " << r;
  }
}

class PknnWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new Workload(Workload::Build(SmallParams(17)));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static Workload& world() { return *world_; }

  static Workload* world_;
};

Workload* PknnWorldTest::world_ = nullptr;

TEST_F(PknnWorldTest, SingleTreeIncrementalBitIdenticalToLegacy) {
  OracleTree legacy(world(), /*incremental=*/false);
  OracleTree inc(world(), /*incremental=*/true);

  QuerySetOptions q;
  q.count = 40;
  q.seed = 2024;
  auto knn = MakePknnQueries(world(), q);
  bool any_results = false;
  for (size_t i = 0; i < knn.size(); ++i) {
    auto a = legacy.tree->KnnQuery(knn[i].issuer, knn[i].qloc, knn[i].k,
                                   knn[i].tq);
    auto b = inc.tree->KnnQuery(knn[i].issuer, knn[i].qloc, knn[i].k,
                                knn[i].tq);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectBitIdentical(*a, *b, "single-tree", i);
    any_results |= !b->empty();
  }
  EXPECT_TRUE(any_results);  // The batch exercised non-trivial searches.
}

TEST_F(PknnWorldTest, IncrementalDoesLessWorkThanLegacy) {
  OracleTree legacy(world(), /*incremental=*/false);
  OracleTree inc(world(), /*incremental=*/true);

  QuerySetOptions q;
  q.count = 40;
  q.seed = 909;
  auto knn = MakePknnQueries(world(), q);
  size_t legacy_descents = 0, inc_descents = 0;
  size_t legacy_rounds = 0, inc_rounds = 0;
  for (const PknnQuery& query : knn) {
    QueryStats legacy_stats;
    ASSERT_TRUE(legacy.tree
                    ->KnnQueryWithStats(query.issuer, query.qloc, query.k,
                                        query.tq, &legacy_stats)
                    .ok());
    legacy_descents += legacy_stats.counters.seek_descents;
    legacy_rounds += legacy_stats.counters.rounds;
    QueryStats inc_stats;
    ASSERT_TRUE(inc.tree
                    ->KnnQueryWithStats(query.issuer, query.qloc, query.k,
                                        query.tq, &inc_stats)
                    .ok());
    inc_descents += inc_stats.counters.seek_descents;
    inc_rounds += inc_stats.counters.rounds;
  }
  // The seeded schedule needs fewer enlargement rounds and the annulus
  // deltas + qsv runs need fewer positioning descents.
  EXPECT_LT(inc_rounds, legacy_rounds);
  EXPECT_LT(inc_descents, legacy_descents);
}

class PknnShardCountTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PknnShardCountTest, EngineIncrementalBitIdenticalToLegacyRoundPath) {
  const size_t shards = GetParam();
  Workload w = Workload::Build(SmallParams(29));
  OracleTree legacy(w, /*incremental=*/false);
  auto engine = MakeEngine(w, shards, 4);  // Incremental by default.
  ASSERT_TRUE(engine->options().tree.index.incremental_knn);

  QuerySetOptions q;
  q.count = 30;
  q.seed = 3030;
  auto knn = MakePknnQueries(w, q);
  for (size_t i = 0; i < knn.size(); ++i) {
    auto want = legacy.tree->KnnQuery(knn[i].issuer, knn[i].qloc, knn[i].k,
                                      knn[i].tq);
    auto got =
        engine->KnnQuery(knn[i].issuer, knn[i].qloc, knn[i].k, knn[i].tq);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ExpectBitIdentical(*want, *got, "engine", i);
  }
}

TEST_P(PknnShardCountTest, AdversarialKAtOrAboveMatchingFriends) {
  const size_t shards = GetParam();
  Workload w = Workload::Build(SmallParams(31));
  OracleTree legacy(w, /*incremental=*/false);
  OracleTree inc(w, /*incremental=*/true);
  auto engine = MakeEngine(w, shards, 2);

  // With 10 policies/user an issuer has far fewer matching friends than
  // these k values, so every search exhausts its rows (the k-candidates
  // early stop never fires) and must still terminate and agree.
  QuerySetOptions q;
  q.count = 8;
  q.seed = 4242;
  auto knn = MakePknnQueries(w, q);
  for (size_t k : {25u, 200u, 800u, 1000u}) {
    for (size_t i = 0; i < knn.size(); ++i) {
      auto want =
          legacy.tree->KnnQuery(knn[i].issuer, knn[i].qloc, k, knn[i].tq);
      auto single =
          inc.tree->KnnQuery(knn[i].issuer, knn[i].qloc, k, knn[i].tq);
      auto fanned =
          engine->KnnQuery(knn[i].issuer, knn[i].qloc, k, knn[i].tq);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(single.ok());
      ASSERT_TRUE(fanned.ok());
      EXPECT_LE(want->size(), k);
      ExpectBitIdentical(*want, *single, "adversarial-single", i);
      ExpectBitIdentical(*want, *fanned, "adversarial-engine", i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, PknnShardCountTest,
                         ::testing::Values(1, 2, 4, 7));

// ---------------------------------------------------------------------------
// Mid-query epoch stability
// ---------------------------------------------------------------------------

// Queries pin the encoding snapshot at admission, so a streaming PkNN that
// overlaps an epoch transition must answer ENTIRELY under one epoch: its
// response's stamped epoch names which, and the answer must equal a static
// index pinned at that snapshot. The policy store is mutated BEFORE the
// concurrent phase (verification state stays constant; only the snapshot
// flips), so each epoch has one well-defined expected answer set.
TEST(PknnEpochStability, StreamingQueriesSeeExactlyOneEpoch) {
  WorkloadParams p = SmallParams(37);
  p.num_users = 400;
  Workload w = Workload::Build(p);
  PolicyCatalog* catalog = w.catalog();

  std::shared_ptr<const EncodingSnapshot> s0 = catalog->snapshot();

  // One mutation wave -> epoch 1. The store is final from here on.
  Lpp grant;
  grant.role = catalog->DefineRole("epoch-test-role");
  grant.locr = Rect::Space(p.space_side);
  grant.tint = TimeOfDayInterval::AllDay(p.time_domain);
  for (UserId u = 0; u < 12; ++u) {
    ASSERT_TRUE(catalog->AddPolicy(u, u + 40, grant).ok());
  }
  auto re = catalog->Reencode();
  ASSERT_TRUE(re.ok());
  std::shared_ptr<const EncodingSnapshot> s1 = re->snapshot;
  ASSERT_NE(s0->epoch(), s1->epoch());

  // Expected answers per epoch, from single trees pinned at each snapshot
  // (same final store/roles).
  auto make_pinned = [&](std::shared_ptr<const EncodingSnapshot> snap,
                         InMemoryDiskManager* disk,
                         std::unique_ptr<BufferPool>* pool) {
    pool->reset(new BufferPool(disk, BufferPoolOptions{p.buffer_pages}));
    PebTreeOptions opts = eval::PebOptionsFor(p);
    auto tree = std::make_unique<PebTree>(pool->get(), opts, &w.store(),
                                          &w.roles(), std::move(snap));
    for (const MovingObject& o : w.dataset().objects) {
      EXPECT_TRUE(tree->Insert(o).ok());
    }
    return tree;
  };
  InMemoryDiskManager disk0, disk1;
  std::unique_ptr<BufferPool> pool0, pool1;
  auto tree0 = make_pinned(s0, &disk0, &pool0);
  auto tree1 = make_pinned(s1, &disk1, &pool1);

  QuerySetOptions q;
  q.count = 12;
  q.seed = 555;
  auto knn = MakePknnQueries(w, q);
  std::vector<std::vector<Neighbor>> want0, want1;
  for (const PknnQuery& query : knn) {
    auto a = tree0->KnnQuery(query.issuer, query.qloc, query.k, query.tq);
    auto b = tree1->KnnQuery(query.issuer, query.qloc, query.k, query.tq);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    want0.push_back(Normalized(*a));
    want1.push_back(Normalized(*b));
  }

  // The engine (built at the catalog's current epoch) flips s0 <-> s1
  // while query threads hammer it; every response must match the expected
  // answers of the epoch it reports.
  auto engine = MakeEngine(w, 4, 4);
  ASSERT_EQ(engine->encoding_epoch(), s1->epoch());

  std::atomic<bool> stop{false};
  std::atomic<size_t> checked{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < 15; ++iter) {
        size_t i = static_cast<size_t>(t + iter) % knn.size();
        QueryStats stats;
        auto got = engine->KnnQueryWithStats(knn[i].issuer, knn[i].qloc,
                                             knn[i].k, knn[i].tq, &stats);
        ASSERT_TRUE(got.ok());
        const std::vector<std::vector<Neighbor>>& want =
            stats.epoch == s0->epoch() ? want0 : want1;
        ASSERT_TRUE(stats.epoch == s0->epoch() ||
                    stats.epoch == s1->epoch());
        std::vector<Neighbor> gn = Normalized(*got);
        ASSERT_EQ(gn.size(), want[i].size()) << "query " << i;
        for (size_t r = 0; r < gn.size(); ++r) {
          EXPECT_EQ(gn[r].uid, want[i][r].uid) << "query " << i;
          EXPECT_EQ(gn[r].distance, want[i][r].distance) << "query " << i;
        }
        checked++;
      }
    });
  }
  std::thread flipper([&] {
    bool to_s1 = true;
    while (!stop.load()) {
      ASSERT_TRUE(engine->AdoptSnapshot(to_s1 ? s1 : s0, nullptr).ok());
      to_s1 = !to_s1;
    }
  });
  for (auto& r : readers) r.join();
  stop.store(true);
  flipper.join();
  EXPECT_EQ(checked.load(), 3u * 15u);
}

}  // namespace
}  // namespace peb
