#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "spatial/geometry.h"
#include "spatial/hilbert.h"
#include "spatial/zcurve.h"
#include "spatial/zrange.h"

namespace peb {
namespace {

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

TEST(Geometry, PointArithmeticAndDistance) {
  Point a{3, 4};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ((a - Point{0, 0}).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo({3, 4}), 0.0);
  Point sum = a + Point{1, -1};
  EXPECT_EQ(sum, (Point{4, 3}));
  EXPECT_EQ(a * 2.0, (Point{6, 8}));
}

TEST(Geometry, RectContainsAndArea) {
  Rect r{{0, 0}, {10, 5}};
  EXPECT_DOUBLE_EQ(r.Area(), 50.0);
  EXPECT_TRUE(r.Contains({0, 0}));     // Borders inclusive.
  EXPECT_TRUE(r.Contains({10, 5}));
  EXPECT_FALSE(r.Contains({10.001, 5}));
  EXPECT_FALSE(r.Contains({-0.001, 2}));
  EXPECT_EQ(r.Center(), (Point{5, 2.5}));
}

TEST(Geometry, EmptyRectBehaves) {
  Rect e{{5, 5}, {4, 6}};
  EXPECT_TRUE(e.Empty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  EXPECT_FALSE(e.Intersects(Rect::Space(10)));
  EXPECT_DOUBLE_EQ(Rect::Space(10).OverlapArea(e), 0.0);
}

TEST(Geometry, IntersectionAndOverlap) {
  Rect a{{0, 0}, {10, 10}};
  Rect b{{5, 5}, {15, 15}};
  EXPECT_TRUE(a.Intersects(b));
  Rect i = a.Intersection(b);
  EXPECT_EQ(i, (Rect{{5, 5}, {10, 10}}));
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 25.0);
  // Touching rectangles intersect with zero area.
  Rect c{{10, 0}, {20, 10}};
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
  // Disjoint.
  Rect d{{11, 11}, {12, 12}};
  EXPECT_FALSE(a.Intersects(d));
}

TEST(Geometry, ExpandAndClamp) {
  Rect r{{4, 4}, {6, 6}};
  Rect e = r.Expanded(2);
  EXPECT_EQ(e, (Rect{{2, 2}, {8, 8}}));
  Rect d = r.ExpandedDirectional(1, 2, 3, 4);
  EXPECT_EQ(d, (Rect{{3, 1}, {8, 10}}));
  Rect clamped = e.ClampedTo(Rect::Space(5));
  EXPECT_EQ(clamped, (Rect{{2, 2}, {5, 5}}));
}

TEST(Geometry, CenteredSquareAndInscribed) {
  Rect s = Rect::CenteredSquare({10, 10}, 4);
  EXPECT_EQ(s, (Rect{{8, 8}, {12, 12}}));
  EXPECT_DOUBLE_EQ(s.InscribedRadius(), 2.0);
}

TEST(Geometry, MinDistanceToPoint) {
  Rect r{{0, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(r.MinDistanceTo({5, 5}), 0.0);   // Inside.
  EXPECT_DOUBLE_EQ(r.MinDistanceTo({13, 5}), 3.0);  // Right of.
  EXPECT_DOUBLE_EQ(r.MinDistanceTo({13, 14}), 5.0); // Corner (3-4-5).
}

// ---------------------------------------------------------------------------
// Z-curve
// ---------------------------------------------------------------------------

TEST(ZCurve, KnownSmallValues) {
  // 2x2 grid: Z order is (0,0)=0, (1,0)=1, (0,1)=2, (1,1)=3.
  EXPECT_EQ(ZEncode(0, 0, 1), 0u);
  EXPECT_EQ(ZEncode(1, 0, 1), 1u);
  EXPECT_EQ(ZEncode(0, 1, 1), 2u);
  EXPECT_EQ(ZEncode(1, 1, 1), 3u);
}

class CurveRoundtripTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CurveRoundtripTest, ZEncodeDecodeRoundtrip) {
  uint32_t bits = GetParam();
  Rng rng(bits);
  uint32_t mask = (1u << bits) - 1;
  for (int i = 0; i < 2000; ++i) {
    uint32_t x = static_cast<uint32_t>(rng.Next64()) & mask;
    uint32_t y = static_cast<uint32_t>(rng.Next64()) & mask;
    uint64_t z = ZEncode(x, y, bits);
    EXPECT_LT(z, 1ull << (2 * bits));
    uint32_t dx, dy;
    ZDecode(z, bits, &dx, &dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

TEST_P(CurveRoundtripTest, HilbertEncodeDecodeRoundtrip) {
  uint32_t bits = GetParam();
  Rng rng(bits * 31);
  uint32_t mask = (1u << bits) - 1;
  for (int i = 0; i < 2000; ++i) {
    uint32_t x = static_cast<uint32_t>(rng.Next64()) & mask;
    uint32_t y = static_cast<uint32_t>(rng.Next64()) & mask;
    uint64_t d = HilbertEncode(x, y, bits);
    EXPECT_LT(d, 1ull << (2 * bits));
    uint32_t dx, dy;
    HilbertDecode(d, bits, &dx, &dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, CurveRoundtripTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 10u, 16u, 21u));

TEST(ZCurve, BijectiveOnSmallGrid) {
  const uint32_t bits = 4;
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      seen.insert(ZEncode(x, y, bits));
    }
  }
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(Hilbert, ConsecutiveValuesAreGridNeighbors) {
  // The defining property of the Hilbert curve (Z-order lacks it).
  const uint32_t bits = 5;
  uint32_t px, py;
  HilbertDecode(0, bits, &px, &py);
  for (uint64_t d = 1; d < (1ull << (2 * bits)); ++d) {
    uint32_t x, y;
    HilbertDecode(d, bits, &x, &y);
    uint32_t manhattan = (x > px ? x - px : px - x) +
                         (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(GridMapper, CellMappingAndClamping) {
  GridMapper grid(1000.0, 3);  // 8 cells of 125 each.
  EXPECT_EQ(grid.cells_per_side(), 8u);
  EXPECT_DOUBLE_EQ(grid.cell_side(), 125.0);
  EXPECT_EQ(grid.CellOf(0.0), 0u);
  EXPECT_EQ(grid.CellOf(124.999), 0u);
  EXPECT_EQ(grid.CellOf(125.0), 1u);
  EXPECT_EQ(grid.CellOf(999.999), 7u);
  // Out-of-domain clamps to border cells.
  EXPECT_EQ(grid.CellOf(-5.0), 0u);
  EXPECT_EQ(grid.CellOf(1000.0), 7u);
  EXPECT_EQ(grid.CellOf(4242.0), 7u);
}

TEST(GridMapper, ZValueMatchesManualEncode) {
  GridMapper grid(1000.0, 10);
  Point p{333.0, 777.0};
  EXPECT_EQ(grid.ZValueOf(p),
            ZEncode(grid.CellOf(p.x), grid.CellOf(p.y), 10));
}

// ---------------------------------------------------------------------------
// Window decomposition: the central property is exact coverage.
// ---------------------------------------------------------------------------

/// Checks that `intervals` cover exactly the Z values of cells inside the
/// rectangle, are sorted, non-overlapping, and non-adjacent.
void CheckExactCoverage(uint32_t bits, uint32_t cx_lo, uint32_t cy_lo,
                        uint32_t cx_hi, uint32_t cy_hi,
                        const std::vector<CurveInterval>& intervals) {
  for (size_t i = 0; i < intervals.size(); ++i) {
    ASSERT_LE(intervals[i].lo, intervals[i].hi);
    if (i > 0) {
      ASSERT_GT(intervals[i].lo, intervals[i - 1].hi + 1)
          << "intervals must be sorted and non-adjacent";
    }
  }
  auto covered = [&](uint64_t z) {
    for (const auto& iv : intervals) {
      if (z >= iv.lo && z <= iv.hi) return true;
    }
    return false;
  };
  for (uint64_t z = 0; z < (1ull << (2 * bits)); ++z) {
    uint32_t x, y;
    ZDecode(z, bits, &x, &y);
    bool inside = x >= cx_lo && x <= cx_hi && y >= cy_lo && y <= cy_hi;
    ASSERT_EQ(covered(z), inside) << "z=" << z << " (" << x << "," << y << ")";
  }
}

TEST(ZRange, FullGridIsOneInterval) {
  auto ivs = ZIntervalsForCellRange(0, 0, 7, 7, 3);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0], (CurveInterval{0, 63}));
}

TEST(ZRange, SingleCell) {
  auto ivs = ZIntervalsForCellRange(3, 5, 3, 5, 3);
  ASSERT_EQ(ivs.size(), 1u);
  uint64_t z = ZEncode(3, 5, 3);
  EXPECT_EQ(ivs[0], (CurveInterval{z, z}));
}

TEST(ZRange, EmptyRangeYieldsNothing) {
  EXPECT_TRUE(ZIntervalsForCellRange(5, 5, 4, 5, 3).empty());
  EXPECT_TRUE(ZIntervalsForCellRange(5, 5, 5, 4, 3).empty());
}

class ZRangeCoverageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZRangeCoverageTest, RandomRectsCoverExactly) {
  const uint32_t bits = 5;  // 32x32 grid: exhaustive check is cheap.
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    uint32_t x1 = static_cast<uint32_t>(rng.NextBelow(32));
    uint32_t x2 = static_cast<uint32_t>(rng.NextBelow(32));
    uint32_t y1 = static_cast<uint32_t>(rng.NextBelow(32));
    uint32_t y2 = static_cast<uint32_t>(rng.NextBelow(32));
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
    auto ivs = ZIntervalsForCellRange(x1, y1, x2, y2, bits);
    CheckExactCoverage(bits, x1, y1, x2, y2, ivs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZRangeCoverageTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(ZRange, CapMergesButNeverDropsCells) {
  const uint32_t bits = 5;
  auto exact = ZIntervalsForCellRange(3, 2, 20, 17, bits);
  ASSERT_GT(exact.size(), 4u);
  ZRangeOptions opts;
  opts.max_intervals = 4;
  auto capped = ZIntervalsForCellRange(3, 2, 20, 17, bits, opts);
  EXPECT_LE(capped.size(), 4u);
  // Every exact interval must be inside some capped interval (superset).
  for (const auto& e : exact) {
    bool contained = false;
    for (const auto& c : capped) {
      if (e.lo >= c.lo && e.hi <= c.hi) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained);
  }
}

TEST(ZRange, CoalesceMergesSmallGapsOnly) {
  std::vector<CurveInterval> ivs = {{0, 4}, {6, 8}, {9, 12}, {20, 25},
                                    {27, 30}, {100, 110}};
  CoalesceIntervals(&ivs, 1);
  // Gaps of 1 (4..6), 0 (8..9), 1 (25..27) close; the 69-wide gap stays.
  std::vector<CurveInterval> want = {{0, 12}, {20, 30}, {100, 110}};
  EXPECT_EQ(ivs, want);
  CoalesceIntervals(&ivs, 0);  // No adjacent intervals left: no-op.
  EXPECT_EQ(ivs, want);
}

TEST(ZRange, CoalescedDecompositionIsASupersetOfTheExactOne) {
  const uint32_t bits = 5;
  auto exact = ZIntervalsForCellRange(3, 2, 20, 17, bits);
  ZRangeOptions opts;
  opts.coalesce_gap = 3;
  auto coalesced = ZIntervalsForCellRange(3, 2, 20, 17, bits, opts);
  EXPECT_LT(coalesced.size(), exact.size());
  for (const auto& e : exact) {
    bool contained = false;
    for (const auto& c : coalesced) {
      if (e.lo >= c.lo && e.hi <= c.hi) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "[" << e.lo << "," << e.hi << "]";
  }
  // Sorted, non-overlapping, non-adjacent-after-gap output.
  for (size_t i = 1; i < coalesced.size(); ++i) {
    EXPECT_GT(coalesced[i].lo, coalesced[i - 1].hi + opts.coalesce_gap);
  }
}

TEST(ZRange, WindowClampedToSpace) {
  GridMapper grid(1000.0, 5);
  // Window hanging off the space: decomposes the clamped part only.
  auto ivs = ZIntervalsForWindow(grid, {{-500, -500}, {100, 100}});
  EXPECT_FALSE(ivs.empty());
  // Fully outside: nothing.
  EXPECT_TRUE(ZIntervalsForWindow(grid, {{2000, 2000}, {3000, 3000}}).empty());
  // Degenerate (point) window maps to its single cell.
  auto pt = ZIntervalsForWindow(grid, {{500, 500}, {500, 500}});
  ASSERT_EQ(pt.size(), 1u);
  EXPECT_EQ(pt[0].lo, pt[0].hi);
}

// ---------------------------------------------------------------------------
// Interval subtraction
// ---------------------------------------------------------------------------

TEST(IntervalSubtract, DisjointKeepsAll) {
  std::vector<CurveInterval> a{{0, 5}, {10, 15}};
  std::vector<CurveInterval> b{{6, 9}, {16, 20}};
  EXPECT_EQ(SubtractIntervals(a, b), a);
}

TEST(IntervalSubtract, FullCoverRemovesAll) {
  std::vector<CurveInterval> a{{5, 10}};
  std::vector<CurveInterval> b{{0, 20}};
  EXPECT_TRUE(SubtractIntervals(a, b).empty());
}

TEST(IntervalSubtract, PartialCuts) {
  std::vector<CurveInterval> a{{0, 10}};
  std::vector<CurveInterval> b{{3, 5}};
  std::vector<CurveInterval> expect{{0, 2}, {6, 10}};
  EXPECT_EQ(SubtractIntervals(a, b), expect);
}

TEST(IntervalSubtract, MultipleCutsAcrossIntervals) {
  std::vector<CurveInterval> a{{0, 10}, {20, 30}};
  std::vector<CurveInterval> b{{0, 1}, {5, 22}, {29, 40}};
  std::vector<CurveInterval> expect{{2, 4}, {23, 28}};
  EXPECT_EQ(SubtractIntervals(a, b), expect);
}

TEST(IntervalUnion, MergesOverlapsAndAdjacency) {
  std::vector<CurveInterval> a{{0, 5}, {10, 15}};
  std::vector<CurveInterval> b{{6, 9}, {20, 30}};
  // [0,5] and [6,9] are adjacent: coalesce; [10,15] adjacent to [9]...
  std::vector<CurveInterval> expect{{0, 15}, {20, 30}};
  EXPECT_EQ(UnionIntervals(a, b), expect);
  EXPECT_EQ(UnionIntervals(b, a), expect);  // Commutative.
  EXPECT_EQ(UnionIntervals(a, {}), a);
  EXPECT_EQ(UnionIntervals({}, b), b);
}

TEST(IntervalUnion, RandomizedAgainstSetModel) {
  Rng rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    auto make_sorted = [&](size_t n) {
      std::vector<CurveInterval> ivs;
      uint64_t cursor = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t lo = cursor + rng.NextBelow(6);
        uint64_t hi = lo + rng.NextBelow(8);
        ivs.push_back({lo, hi});
        cursor = hi + 2 + rng.NextBelow(4);
      }
      return ivs;
    };
    auto a = make_sorted(6);
    auto b = make_sorted(6);
    auto got = UnionIntervals(a, b);
    std::set<uint64_t> want;
    for (auto& iv : a)
      for (uint64_t v = iv.lo; v <= iv.hi; ++v) want.insert(v);
    for (auto& iv : b)
      for (uint64_t v = iv.lo; v <= iv.hi; ++v) want.insert(v);
    std::set<uint64_t> have;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_LE(got[i].lo, got[i].hi);
      if (i > 0) {
        ASSERT_GT(got[i].lo, got[i - 1].hi + 1);  // Coalesced.
      }
      for (uint64_t v = got[i].lo; v <= got[i].hi; ++v) have.insert(v);
    }
    EXPECT_EQ(have, want);
  }
}

TEST(IntervalSubtract, RandomizedAgainstSetModel) {
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    auto make_sorted = [&](size_t n, uint64_t limit) {
      std::set<uint64_t> points;
      std::vector<CurveInterval> ivs;
      uint64_t cursor = 0;
      for (size_t i = 0; i < n && cursor < limit; ++i) {
        uint64_t lo = cursor + rng.NextBelow(6);
        uint64_t hi = lo + rng.NextBelow(8);
        ivs.push_back({lo, hi});
        cursor = hi + 2 + rng.NextBelow(4);
      }
      return ivs;
    };
    auto a = make_sorted(6, 200);
    auto b = make_sorted(6, 200);
    auto got = SubtractIntervals(a, b);

    std::set<uint64_t> sa, sb;
    for (auto& iv : a)
      for (uint64_t v = iv.lo; v <= iv.hi; ++v) sa.insert(v);
    for (auto& iv : b)
      for (uint64_t v = iv.lo; v <= iv.hi; ++v) sb.insert(v);
    std::set<uint64_t> want;
    for (uint64_t v : sa)
      if (!sb.contains(v)) want.insert(v);
    std::set<uint64_t> have;
    for (auto& iv : got) {
      ASSERT_LE(iv.lo, iv.hi);
      for (uint64_t v = iv.lo; v <= iv.hi; ++v) have.insert(v);
    }
    EXPECT_EQ(have, want);
  }
}

}  // namespace

TEST(ZRing, EmptyCoveredEqualsPlainDecomposition) {
  GridMapper grid(1000.0, 6);
  Rect window{{100, 100}, {400, 300}};
  auto plain = ZIntervalsForWindow(grid, window);
  RingDecomposition ring = ZRingForWindow(grid, window, {});
  EXPECT_EQ(ring.ring, plain);
  EXPECT_EQ(ring.covered, plain);
}

TEST(ZRing, NestedWindowsYieldDisjointRings) {
  // Annulus deltas of a growing centered square: each round's ring must be
  // disjoint from everything previously covered, and the union of all
  // rings must equal the outermost window's decomposition.
  GridMapper grid(1000.0, 6);
  Point c{480.0, 520.0};
  std::vector<CurveInterval> covered;
  std::vector<CurveInterval> accumulated;
  for (double side : {120.0, 240.0, 480.0, 960.0}) {
    Rect outer = Rect::CenteredSquare(c, side);
    RingDecomposition rd = ZRingForWindow(grid, outer, covered);
    // Disjoint: subtracting the prior covered set from the ring again
    // changes nothing.
    EXPECT_EQ(SubtractIntervals(rd.ring, covered), rd.ring);
    accumulated = UnionIntervals(accumulated, rd.ring);
    covered = rd.covered;
    EXPECT_EQ(accumulated, covered);
  }
  EXPECT_EQ(covered,
            ZIntervalsForWindow(grid, Rect::CenteredSquare(c, 960.0)));
}

TEST(ZRing, InnerRoundFullyCoveredYieldsEmptyRing) {
  GridMapper grid(1000.0, 6);
  Rect outer{{200, 200}, {500, 500}};
  auto dec = ZIntervalsForWindow(grid, outer);
  RingDecomposition rd = ZRingForWindow(grid, outer, dec);
  EXPECT_TRUE(rd.ring.empty());
  EXPECT_EQ(rd.covered, dec);
}

TEST(ZRing, CoalescedCoverIsRememberedAcrossRounds) {
  // With a coalescing gap the inner decomposition scans gap cells too;
  // the covered set must remember them so the next round's ring does not
  // re-fetch those keys.
  GridMapper grid(1000.0, 6);
  ZRangeOptions opts;
  opts.coalesce_gap = 8;
  Rect inner{{300, 300}, {460, 460}};
  Rect outer{{240, 240}, {520, 520}};
  auto inner_dec = ZIntervalsForWindow(grid, inner, opts);
  RingDecomposition rd = ZRingForWindow(grid, outer, inner_dec, opts);
  EXPECT_EQ(SubtractIntervals(rd.ring, inner_dec), rd.ring);
  // Everything the outer window needs is in ring + prior covered.
  auto outer_dec = ZIntervalsForWindow(grid, outer, opts);
  EXPECT_TRUE(
      SubtractIntervals(outer_dec, UnionIntervals(rd.ring, inner_dec))
          .empty());
}

}  // namespace peb
