#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/page.h"

namespace peb {
namespace {

Page MakePage(uint64_t stamp) {
  Page p;
  p.Clear();
  p.WriteAt<uint64_t>(0, stamp);
  p.WriteAt<uint64_t>(kPageSize - 8, ~stamp);
  return p;
}

// ---------------------------------------------------------------------------
// DiskManager: parameterized over both implementations.
// ---------------------------------------------------------------------------

enum class DiskKind { kMemory, kFile };

class DiskManagerTest : public ::testing::TestWithParam<DiskKind> {
 protected:
  void SetUp() override {
    if (GetParam() == DiskKind::kMemory) {
      disk_ = std::make_unique<InMemoryDiskManager>();
    } else {
      path_ = ::testing::TempDir() + "/peb_disk_test.db";
      std::remove(path_.c_str());
      auto fd = std::make_unique<FileDiskManager>(path_);
      ASSERT_TRUE(fd->status().ok()) << fd->status();
      disk_ = std::move(fd);
    }
  }

  void TearDown() override {
    disk_.reset();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::unique_ptr<DiskManager> disk_;
  std::string path_;
};

TEST_P(DiskManagerTest, AllocateReadWriteRoundtrip) {
  auto r = disk_->Allocate();
  ASSERT_TRUE(r.ok());
  PageId id = *r;
  Page w = MakePage(0xDEADBEEF);
  ASSERT_TRUE(disk_->Write(id, w).ok());
  Page out;
  ASSERT_TRUE(disk_->Read(id, &out).ok());
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0xDEADBEEFull);
  EXPECT_EQ(out.ReadAt<uint64_t>(kPageSize - 8), ~0xDEADBEEFull);
}

TEST_P(DiskManagerTest, FreshPagesAreZeroed) {
  auto r = disk_->Allocate();
  ASSERT_TRUE(r.ok());
  Page out;
  ASSERT_TRUE(disk_->Read(*r, &out).ok());
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0u);
  EXPECT_EQ(out.ReadAt<uint64_t>(kPageSize - 8), 0u);
}

TEST_P(DiskManagerTest, ManyPagesKeepDistinctContent) {
  std::vector<PageId> ids;
  for (uint64_t i = 0; i < 64; ++i) {
    auto r = disk_->Allocate();
    ASSERT_TRUE(r.ok());
    ids.push_back(*r);
    ASSERT_TRUE(disk_->Write(*r, MakePage(i)).ok());
  }
  for (uint64_t i = 0; i < 64; ++i) {
    Page out;
    ASSERT_TRUE(disk_->Read(ids[i], &out).ok());
    EXPECT_EQ(out.ReadAt<uint64_t>(0), i);
  }
  EXPECT_EQ(disk_->live_pages(), 64u);
}

TEST_P(DiskManagerTest, FreeRejectsDoubleFreeAndReuse) {
  auto r = disk_->Allocate();
  ASSERT_TRUE(r.ok());
  PageId id = *r;
  ASSERT_TRUE(disk_->Free(id).ok());
  EXPECT_FALSE(disk_->Free(id).ok());
  Page out;
  EXPECT_FALSE(disk_->Read(id, &out).ok());
  // The freed slot is recycled by the next allocation, zeroed.
  auto r2 = disk_->Allocate();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, id);
  ASSERT_TRUE(disk_->Read(id, &out).ok());
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0u);
}

TEST_P(DiskManagerTest, ReadPastCapacityFails) {
  Page out;
  EXPECT_TRUE(disk_->Read(999, &out).IsOutOfRange());
}

// Regression: freed pages used to be forgotten on reopen (the free list was
// never persisted), so a reopened file leaked every freed slot forever and
// could double-serve ids. The superblock now carries the free list.
TEST(FileDiskManagerTest, FreeListSurvivesReopen) {
  const std::string path = ::testing::TempDir() + "/peb_freelist_test.db";
  std::remove(path.c_str());
  std::vector<PageId> freed;
  {
    FileDiskManager disk(path);
    ASSERT_TRUE(disk.status().ok());
    std::vector<PageId> ids;
    for (uint64_t i = 0; i < 8; ++i) {
      auto r = disk.Allocate();
      ASSERT_TRUE(r.ok());
      ids.push_back(*r);
      ASSERT_TRUE(disk.Write(*r, MakePage(i)).ok());
    }
    for (size_t i : {1u, 4u, 6u}) {
      ASSERT_TRUE(disk.Free(ids[i]).ok());
      freed.push_back(ids[i]);
    }
    ASSERT_TRUE(disk.Commit("", 1, 0, true).ok());
  }
  auto reopened = FileDiskManager::OpenExisting(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto& disk = **reopened;
  EXPECT_EQ(disk.capacity(), 8u);
  EXPECT_EQ(disk.live_pages(), 5u);
  // Freed slots stayed freed across the reopen: reads reject them...
  Page out;
  for (PageId id : freed) EXPECT_FALSE(disk.Read(id, &out).ok());
  // ...and the next allocations recycle them instead of growing the file.
  for (int i = 0; i < 3; ++i) {
    auto r = disk.Allocate();
    ASSERT_TRUE(r.ok());
    EXPECT_NE(std::find(freed.begin(), freed.end(), *r), freed.end())
        << "allocation " << i << " returned fresh page " << *r;
  }
  EXPECT_EQ(disk.capacity(), 8u);
  std::remove(path.c_str());
}

// Regression: create-mode construction used to fopen("w+b"), silently
// truncating any database already at the path.
TEST(FileDiskManagerTest, CreateRefusesToClobberExistingDatabase) {
  const std::string path = ::testing::TempDir() + "/peb_clobber_test.db";
  std::remove(path.c_str());
  {
    FileDiskManager disk(path);
    ASSERT_TRUE(disk.status().ok());
    auto r = disk.Allocate();
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(disk.Write(*r, MakePage(7)).ok());
    ASSERT_TRUE(disk.Commit("survivor", 1, 0, true).ok());
  }
  {
    FileDiskManager clobber(path);
    EXPECT_TRUE(clobber.status().IsInvalidArgument()) << clobber.status();
  }
  // The refusal left the database untouched.
  {
    auto reopened = FileDiskManager::OpenExisting(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ((*reopened)->metadata(), "survivor");
  }
  // An explicit opt-in recreates it.
  FileDiskOptions opts;
  opts.overwrite_existing = true;
  FileDiskManager fresh(path, opts);
  EXPECT_TRUE(fresh.status().ok()) << fresh.status();
  EXPECT_EQ(fresh.capacity(), 0u);
  std::remove(path.c_str());
}

// Regression: Commit() used to pick the previous superblock's free-list
// overflow chain pages as the new generation's spill pages, physically
// overwriting them before the new superblock was durable. A crash between
// the spill write and the superblock publish then fell back to the old
// superblock, whose chain was clobbered — OpenExisting reported Corruption
// and the database was unrecoverable.
TEST(FileDiskManagerTest, CrashBetweenSpillWriteAndSuperblockKeepsOldChain) {
  const std::string path = ::testing::TempDir() + "/peb_spill_crash_test.db";
  std::remove(path.c_str());
  FaultInjector injector;
  // Enough free pages that the free list overflows the inline superblock
  // area on every commit: ~1007 entries fit inline with empty metadata.
  constexpr size_t kPages = 1200;
  constexpr size_t kFreed = 1100;
  {
    FaultInjectingDiskManager disk(path, &injector);
    ASSERT_TRUE(disk.status().ok()) << disk.status();
    std::vector<PageId> ids;
    for (size_t i = 0; i < kPages; ++i) {
      auto r = disk.Allocate();
      ASSERT_TRUE(r.ok());
      ids.push_back(*r);
    }
    for (size_t i = 0; i < kFreed; ++i) ASSERT_TRUE(disk.Free(ids[i]).ok());
    ASSERT_TRUE(disk.Commit("", 1, 0, false).ok());
    // Second commit: its only physical writes are the new spill page(s)
    // and the superblock. Tear the very first one — with the old bug that
    // write landed on the committed generation's chain page.
    ASSERT_TRUE(disk.Free(ids[kFreed]).ok());
    injector.torn_on_crash.store(true);
    injector.writes_until_crash.store(0);
    EXPECT_FALSE(disk.Commit("", 2, 0, false).ok());
  }
  // The crashed commit never published: the previous generation — chain
  // pages included — must reopen intact.
  auto reopened = FileDiskManager::OpenExisting(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->checkpoint_seq(), 1u);
  // +1: the generation's chain page is reserved off the free list.
  EXPECT_EQ((*reopened)->live_pages(), kPages - kFreed + 1);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllDisks, DiskManagerTest,
                         ::testing::Values(DiskKind::kMemory, DiskKind::kFile),
                         [](const auto& param_info) {
                           return param_info.param == DiskKind::kMemory
                                      ? "Memory"
                                      : "File";
                         });

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  void MakePool(size_t capacity, size_t shards = 1) {
    pool_ = std::make_unique<BufferPool>(&disk_,
                                         BufferPoolOptions{capacity, shards});
  }

  /// Allocates `n` pages directly on disk, stamped with their index.
  std::vector<PageId> Preallocate(size_t n) {
    std::vector<PageId> ids;
    for (size_t i = 0; i < n; ++i) {
      auto r = disk_.Allocate();
      EXPECT_TRUE(r.ok());
      Page p = MakePage(i);
      EXPECT_TRUE(disk_.Write(*r, p).ok());
      ids.push_back(*r);
    }
    return ids;
  }

  InMemoryDiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, FetchMissThenHit) {
  MakePool(4);
  auto ids = Preallocate(1);
  {
    auto g = pool_->FetchPage(ids[0]);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->page()->ReadAt<uint64_t>(0), 0u);
  }
  EXPECT_EQ(pool_->stats().physical_reads, 1u);
  {
    auto g = pool_->FetchPage(ids[0]);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool_->stats().physical_reads, 1u);  // Second fetch was a hit.
  EXPECT_EQ(pool_->stats().cache_hits, 1u);
  EXPECT_EQ(pool_->stats().logical_fetches, 2u);
  EXPECT_NEAR(pool_->stats().HitRatio(), 0.5, 1e-9);
}

TEST_F(BufferPoolTest, ClockGivesReferencedPagesASecondChance) {
  // Clock sweep (second-chance LRU approximation): a page whose reference
  // bit is set survives a sweep in which an unreferenced page is victim.
  MakePool(2);
  auto ids = Preallocate(4);
  { auto g = pool_->FetchPage(ids[0]); ASSERT_TRUE(g.ok()); }  // A
  { auto g = pool_->FetchPage(ids[1]); ASSERT_TRUE(g.ok()); }  // B
  // C's victim sweep clears both reference bits, then evicts A (first in
  // clock order); C enters with its reference bit set.
  { auto g = pool_->FetchPage(ids[2]); ASSERT_TRUE(g.ok()); }
  // D finds B unreferenced and evicts it; C's bit saves C.
  { auto g = pool_->FetchPage(ids[3]); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool_->stats().physical_reads, 4u);
  { auto g = pool_->FetchPage(ids[2]); ASSERT_TRUE(g.ok()); }  // C: still hit.
  EXPECT_EQ(pool_->stats().physical_reads, 4u);
  EXPECT_EQ(pool_->stats().cache_hits, 1u);
  { auto g = pool_->FetchPage(ids[1]); ASSERT_TRUE(g.ok()); }  // B: miss again.
  EXPECT_EQ(pool_->stats().physical_reads, 5u);
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  MakePool(1);
  auto ids = Preallocate(2);
  {
    auto g = pool_->FetchPage(ids[0]);
    ASSERT_TRUE(g.ok());
    g->page()->WriteAt<uint64_t>(0, 777);
    g->MarkDirty();
  }
  { auto g = pool_->FetchPage(ids[1]); ASSERT_TRUE(g.ok()); }  // Evicts 0.
  EXPECT_EQ(pool_->stats().physical_writes, 1u);
  Page raw;
  ASSERT_TRUE(disk_.Read(ids[0], &raw).ok());
  EXPECT_EQ(raw.ReadAt<uint64_t>(0), 777u);
}

TEST_F(BufferPoolTest, CleanPageNotWrittenBack) {
  MakePool(1);
  auto ids = Preallocate(2);
  { auto g = pool_->FetchPage(ids[0]); ASSERT_TRUE(g.ok()); }
  { auto g = pool_->FetchPage(ids[1]); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool_->stats().physical_writes, 0u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  MakePool(2);
  auto ids = Preallocate(3);
  auto g0 = pool_->FetchPage(ids[0]);
  ASSERT_TRUE(g0.ok());
  auto g1 = pool_->FetchPage(ids[1]);
  ASSERT_TRUE(g1.ok());
  // Pool full of pinned pages: a third fetch must fail.
  auto g2 = pool_->FetchPage(ids[2]);
  EXPECT_TRUE(g2.status().IsResourceExhausted());
  // Releasing one pin unblocks the fetch.
  g1->Release();
  auto g2b = pool_->FetchPage(ids[2]);
  EXPECT_TRUE(g2b.ok());
}

TEST_F(BufferPoolTest, PinCountTracksGuards) {
  MakePool(4);
  auto ids = Preallocate(1);
  EXPECT_EQ(pool_->PinCount(ids[0]), 0);
  {
    auto g1 = pool_->FetchPage(ids[0]);
    ASSERT_TRUE(g1.ok());
    EXPECT_EQ(pool_->PinCount(ids[0]), 1);
    {
      auto g2 = pool_->FetchPage(ids[0]);
      ASSERT_TRUE(g2.ok());
      EXPECT_EQ(pool_->PinCount(ids[0]), 2);
    }
    EXPECT_EQ(pool_->PinCount(ids[0]), 1);
  }
  EXPECT_EQ(pool_->PinCount(ids[0]), 0);
}

TEST_F(BufferPoolTest, MoveTransfersPin) {
  MakePool(4);
  auto ids = Preallocate(1);
  auto g = pool_->FetchPage(ids[0]);
  ASSERT_TRUE(g.ok());
  PageGuard moved = std::move(*g);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(g->valid());
  EXPECT_EQ(pool_->PinCount(ids[0]), 1);
  moved.Release();
  EXPECT_EQ(pool_->PinCount(ids[0]), 0);
}

TEST_F(BufferPoolTest, NewPageIsPinnedZeroedAndDirty) {
  MakePool(2);
  auto g = pool_->NewPage();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->page()->ReadAt<uint64_t>(0), 0u);
  EXPECT_EQ(pool_->PinCount(g->id()), 1);
  PageId id = g->id();
  g->page()->WriteAt<uint64_t>(0, 42);
  g->Release();
  ASSERT_TRUE(pool_->FlushAll().ok());
  Page raw;
  ASSERT_TRUE(disk_.Read(id, &raw).ok());
  EXPECT_EQ(raw.ReadAt<uint64_t>(0), 42u);
}

TEST_F(BufferPoolTest, DeletePageEvictsAndFrees) {
  MakePool(2);
  auto g = pool_->NewPage();
  ASSERT_TRUE(g.ok());
  PageId id = g->id();
  EXPECT_FALSE(pool_->DeletePage(id).ok());  // Still pinned.
  g->Release();
  EXPECT_TRUE(pool_->DeletePage(id).ok());
  EXPECT_FALSE(pool_->FetchPage(id).ok());  // Freed on disk.
  EXPECT_EQ(pool_->resident(), 0u);
}

TEST_F(BufferPoolTest, ResetStatsZeroesCounters) {
  MakePool(2);
  auto ids = Preallocate(1);
  { auto g = pool_->FetchPage(ids[0]); ASSERT_TRUE(g.ok()); }
  pool_->ResetStats();
  EXPECT_EQ(pool_->stats().physical_reads, 0u);
  EXPECT_EQ(pool_->stats().logical_fetches, 0u);
}

TEST_F(BufferPoolTest, ScanLargerThanPoolThrashes) {
  // Sequential scan over 3x the pool size: every fetch is a miss both
  // passes (classic sequential-flooding behavior; clock degrades to FIFO
  // here exactly as LRU does).
  MakePool(10);
  auto ids = Preallocate(30);
  for (int pass = 0; pass < 2; ++pass) {
    for (PageId id : ids) {
      auto g = pool_->FetchPage(id);
      ASSERT_TRUE(g.ok());
    }
  }
  EXPECT_EQ(pool_->stats().physical_reads, 60u);
  EXPECT_EQ(pool_->stats().cache_hits, 0u);
}

TEST_F(BufferPoolTest, ShardedPoolKeepsSemanticsAndAggregatesStats) {
  MakePool(16, 4);
  EXPECT_EQ(pool_->num_shards(), 4u);
  EXPECT_EQ(pool_->capacity(), 16u);
  auto ids = Preallocate(12);
  for (PageId id : ids) {
    auto g = pool_->FetchPage(id);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->page()->ReadAt<uint64_t>(0), static_cast<uint64_t>(id));
  }
  for (PageId id : ids) {
    auto g = pool_->FetchPage(id);  // All resident: every fetch a hit.
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool_->stats().physical_reads, 12u);
  EXPECT_EQ(pool_->stats().cache_hits, 12u);
  EXPECT_EQ(pool_->stats().logical_fetches, 24u);
  EXPECT_EQ(pool_->resident(), 12u);
}

TEST_F(BufferPoolTest, ShardCountIsClampedToCapacity) {
  MakePool(3, 64);  // Every shard must own at least one frame.
  EXPECT_EQ(pool_->num_shards(), 3u);
  auto ids = Preallocate(3);
  for (PageId id : ids) {
    auto g = pool_->FetchPage(id);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool_->stats().physical_reads, 3u);
}

TEST_F(BufferPoolTest, PrefetchStagesWithoutPinning) {
  MakePool(4);
  auto ids = Preallocate(2);
  pool_->Prefetch(ids[0]);
  EXPECT_EQ(pool_->PinCount(ids[0]), 0);
  EXPECT_EQ(pool_->stats().physical_reads, 1u);
  EXPECT_EQ(pool_->stats().prefetch_reads, 1u);
  EXPECT_EQ(pool_->stats().logical_fetches, 0u);  // Not a fetch.
  {
    auto g = pool_->FetchPage(ids[0]);  // Arrives already resident.
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool_->stats().cache_hits, 1u);
  EXPECT_EQ(pool_->stats().physical_reads, 1u);
  // Prefetching a resident page or an invalid id is a no-op.
  pool_->Prefetch(ids[0]);
  pool_->Prefetch(kInvalidPageId);
  EXPECT_EQ(pool_->stats().physical_reads, 1u);
  // A failed prefetch (unallocated page) is silently ignored.
  pool_->Prefetch(999);
  EXPECT_EQ(pool_->stats().prefetch_reads, 1u);
  { auto g = pool_->FetchPage(ids[1]); ASSERT_TRUE(g.ok()); }
}

// Concurrent torture: parallel Fetch/MarkDirty/evict traffic across shards.
// Writer threads own disjoint page subsets and bump a per-page counter on
// every visit; reader threads fetch random pages. The pool is much smaller
// than the page set, so evictions (with dirty write-back) happen constantly
// under contention. Afterwards: no pin leaks, no lost dirty pages (every
// page's durable counter equals the increments its owner performed).
TEST_F(BufferPoolTest, ConcurrentTortureAcrossShards) {
  constexpr size_t kPages = 256;
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 3;
  constexpr size_t kOpsPerWriter = 4000;
  constexpr size_t kOpsPerReader = 4000;
  // 8 frames per shard: more live pins than one shard's frames can never
  // happen (7 threads x 1 pin), so ResourceExhausted is impossible while
  // eviction traffic stays heavy (256 pages through 64 frames).
  MakePool(64, 8);
  auto ids = Preallocate(kPages);

  std::atomic<bool> failed{false};
  std::vector<size_t> increments(kPages, 0);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      uint64_t rng = 0x9E3779B97F4A7C15ull * (w + 1);
      for (size_t op = 0; op < kOpsPerWriter; ++op) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        // Writers own disjoint residues mod kWriters.
        size_t slot = (rng >> 33) % (kPages / kWriters) * kWriters + w;
        auto g = pool_->FetchPage(ids[slot]);
        if (!g.ok()) {
          failed.store(true);
          return;
        }
        uint64_t v = g->page()->ReadAt<uint64_t>(8);
        g->page()->WriteAt<uint64_t>(8, v + 1);
        g->MarkDirty();
      }
    });
  }
  // Count the increments deterministically (same per-thread sequence).
  for (size_t w = 0; w < kWriters; ++w) {
    uint64_t rng = 0x9E3779B97F4A7C15ull * (w + 1);
    for (size_t op = 0; op < kOpsPerWriter; ++op) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      size_t slot = (rng >> 33) % (kPages / kWriters) * kWriters + w;
      increments[slot]++;
    }
  }
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      uint64_t rng = 0xDEADBEEFull * (r + 1);
      for (size_t op = 0; op < kOpsPerReader; ++op) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        size_t slot = (rng >> 33) % kPages;
        auto g = pool_->FetchPage(ids[slot]);
        if (!g.ok()) {
          failed.store(true);
          return;
        }
        // Stamp written by Preallocate is still intact below the counter.
        if (g->page()->ReadAt<uint64_t>(0) != slot) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  // Pin counts never went negative and all pins were returned.
  for (size_t i = 0; i < kPages; ++i) {
    EXPECT_EQ(pool_->PinCount(ids[i]), 0) << "page " << i;
  }
  EXPECT_LE(pool_->resident(), pool_->capacity());

  // No lost dirty pages: flush and read back through the raw disk.
  ASSERT_TRUE(pool_->FlushAll().ok());
  for (size_t i = 0; i < kPages; ++i) {
    Page raw;
    ASSERT_TRUE(disk_.Read(ids[i], &raw).ok());
    EXPECT_EQ(raw.ReadAt<uint64_t>(8), increments[i]) << "page " << i;
  }
}

}  // namespace
}  // namespace peb
