// Crash-recovery torture: kill the durable engine mid-batch at injected
// failpoints (counted write crashes, torn writes, EIO on sync — including a
// second crash during recovery itself), reopen from the file + WAL, and
// prove the recovered engine bit-matches a never-crashed in-memory oracle
// that applied exactly the committed batch prefix: identical PRQ and PkNN
// answers, identical size, identical continuous-query event streams, and a
// clean ValidateInvariants.
//
// On failure, TearDown copies the database/WAL and writes hexdumps of the
// superblocks and the log into crash-recovery-artifacts/ for CI upload.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/engine_wal.h"
#include "engine/sharded_engine.h"
#include "eval/workload.h"
#include "motion/update_stream.h"
#include "service/service.h"
#include "storage/fault_injection.h"
#include "storage/wal.h"
#include "test_util.h"

namespace peb {
namespace {

using engine::EngineOptions;
using engine::ShardedPebEngine;
using eval::Workload;
using eval::WorkloadParams;
using service::MovingObjectService;

constexpr size_t kUsers = 350;
constexpr size_t kBatches = 8;
constexpr size_t kBatchSize = 48;

WorkloadParams CrashParams() {
  WorkloadParams p;
  p.num_users = kUsers;
  p.policies_per_user = 8;
  p.buffer_pages = 50;
  p.grid_bits = 8;
  p.seed = 2026;
  return p;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new Workload(Workload::Build(CrashParams()));
    // The exact event sequence every engine in this suite replays, sliced
    // into batches up front so "the committed prefix" is well defined.
    auto stream = eval::CloneUniformUpdateStream(*world_);
    ASSERT_NE(stream, nullptr);
    batches_ = new std::vector<std::vector<UpdateEvent>>();
    for (size_t b = 0; b < kBatches; ++b) {
      std::vector<UpdateEvent> batch;
      for (size_t i = 0; i < kBatchSize; ++i) batch.push_back(stream->Next());
      batches_->push_back(std::move(batch));
    }
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    delete batches_;
    batches_ = nullptr;
  }

  void SetUp() override {
    path_ = ::testing::TempDir() + "/peb_crash_recovery_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".db";
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  void TearDown() override {
    if (HasFailure()) DumpArtifacts();
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  /// Copies the database + WAL and writes hexdumps (both superblock slots,
  /// the whole log) next to the test binary; CI uploads the directory.
  void DumpArtifacts() {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path dir = "crash-recovery-artifacts";
    fs::create_directories(dir, ec);
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::copy_file(path_, dir / (name + ".db"),
                  fs::copy_options::overwrite_existing, ec);
    fs::copy_file(path_ + ".wal", dir / (name + ".wal"),
                  fs::copy_options::overwrite_existing, ec);
    std::ofstream out(dir / (name + ".hexdump.txt"));
    HexdumpInto(out, path_, 0, 2 * kPageSize, "superblock slots 0+1");
    HexdumpInto(out, path_ + ".wal", 0, 1 << 16, "wal");
  }

  static void HexdumpInto(std::ofstream& out, const std::string& file,
                          uint64_t offset, uint64_t limit,
                          const char* label) {
    out << "=== " << label << " (" << file << ") ===\n";
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      out << "<unreadable>\n";
      return;
    }
    in.seekg(static_cast<std::streamoff>(offset));
    char buf[16];
    for (uint64_t off = 0; off < limit; off += 16) {
      in.read(buf, sizeof(buf));
      const std::streamsize got = in.gcount();
      if (got <= 0) break;
      char line[16];
      std::snprintf(line, sizeof(line), "%08llx ",
                    static_cast<unsigned long long>(offset + off));
      out << line;
      for (std::streamsize i = 0; i < got; ++i) {
        std::snprintf(line, sizeof(line), "%02x ",
                      static_cast<unsigned char>(buf[i]));
        out << line;
      }
      out << '\n';
    }
  }

  /// Engine options for a durable engine at path_. num_threads=0: every
  /// shard task runs inline, so batch application order is deterministic.
  EngineOptions DurableOptions(FaultInjector* injector,
                               bool checkpoint_on_close) const {
    EngineOptions opts;
    opts.num_shards = 3;
    opts.num_threads = 0;
    opts.buffer_pages = world_->params().buffer_pages;
    opts.tree = eval::PebOptionsFor(world_->params());
    opts.delta.merge_threshold = 64;  // Small: merges happen mid-run.
    opts.durability.path = path_;
    opts.durability.fault_injector = injector;
    opts.durability.checkpoint_on_close = checkpoint_on_close;
    return opts;
  }

  EngineOptions OracleOptions() const {
    EngineOptions opts = DurableOptions(nullptr, false);
    opts.durability = {};  // In-memory: never crashes, never recovers.
    return opts;
  }

  /// A never-crashed in-memory engine that applied batches [0, committed).
  std::unique_ptr<ShardedPebEngine> BuildOracle(size_t committed) const {
    auto oracle = std::make_unique<ShardedPebEngine>(
        OracleOptions(), &world_->store(), &world_->roles(),
        world_->catalog().snapshot());
    EXPECT_TRUE(oracle->LoadDataset(world_->dataset()).ok());
    for (size_t b = 0; b < committed; ++b) {
      EXPECT_TRUE(oracle->ApplyBatch((*batches_)[b]).ok()) << "batch " << b;
    }
    return oracle;
  }

  /// Applies batches in order until one fails; returns the committed count.
  static size_t ApplyUntilCrash(ShardedPebEngine& engine) {
    for (size_t b = 0; b < batches_->size(); ++b) {
      if (!engine.ApplyBatch((*batches_)[b]).ok()) return b;
    }
    return batches_->size();
  }

  /// What recovery is contractually bound to: the number of batches whose
  /// kEvents record survives in the log's complete prefix. Equals the
  /// committed count when the crash hit the batch's own append, committed+1
  /// when it hit something after the sync (an advisory merge marker, or the
  /// sync's EIO after a successful append) — an errored ApplyBatch promises
  /// only atomicity, so the oracle must be read off the durable log itself.
  size_t DurableBatches(size_t committed) const {
    auto records = WriteAheadLog::ReadAll(path_ + ".wal");
    EXPECT_TRUE(records.ok()) << records.status();
    size_t durable = 0;
    for (const auto& rec : *records) {
      if (rec.type == engine_wal::kEvents) ++durable;
    }
    EXPECT_GE(durable, committed);
    EXPECT_LE(durable, committed + 1);
    return durable;
  }

  /// Query time: the last event time of the committed prefix (identical on
  /// both engines), so extrapolation never runs backwards.
  static Timestamp QueryTime(size_t committed) {
    if (committed == 0) return world_->now();
    return (*batches_)[committed - 1].back().t;
  }

  /// Bit-match: deterministic PRQ + PkNN samples, sizes, invariants.
  static void ExpectEquivalent(ShardedPebEngine& recovered,
                               ShardedPebEngine& oracle, Timestamp tq) {
    ASSERT_TRUE(recovered.ValidateInvariants().ok());
    EXPECT_EQ(recovered.size(), oracle.size());
    Rng rng(424242);
    for (int q = 0; q < 14; ++q) {
      const UserId issuer = static_cast<UserId>(rng.NextBelow(kUsers));
      const Rect range = Rect::CenteredSquare(
          {rng.Uniform(100, 900), rng.Uniform(100, 900)}, 380.0);
      auto got = recovered.RangeQuery(issuer, range, tq);
      auto want = oracle.RangeQuery(issuer, range, tq);
      ASSERT_TRUE(got.ok()) << got.status();
      ASSERT_TRUE(want.ok()) << want.status();
      EXPECT_EQ(*got, *want) << "PRQ " << q << " issuer " << issuer;
    }
    for (int q = 0; q < 8; ++q) {
      const UserId issuer = static_cast<UserId>(rng.NextBelow(kUsers));
      const Point qloc{rng.Uniform(100, 900), rng.Uniform(100, 900)};
      auto got = recovered.KnnQuery(issuer, qloc, 5, tq);
      auto want = oracle.KnnQuery(issuer, qloc, 5, tq);
      ASSERT_TRUE(got.ok()) << got.status();
      ASSERT_TRUE(want.ok()) << want.status();
      EXPECT_EQ(*got, *want) << "PkNN " << q << " issuer " << issuer;
    }
    // Spot-check raw object states too (positions are doubles: exact).
    for (UserId uid = 0; uid < kUsers; uid += 23) {
      auto got = recovered.GetObject(uid);
      auto want = oracle.GetObject(uid);
      ASSERT_EQ(got.ok(), want.ok()) << "uid " << uid;
      if (got.ok()) {
        EXPECT_EQ((*got).pos.x, (*want).pos.x);
        EXPECT_EQ((*got).pos.y, (*want).pos.y);
        EXPECT_EQ((*got).tu, (*want).tu);
      }
    }
  }

  Result<std::unique_ptr<ShardedPebEngine>> Reopen(
      FaultInjector* injector = nullptr, bool paranoid = false) const {
    EngineOptions opts = DurableOptions(injector, /*checkpoint_on_close=*/
                                        false);
    opts.tree.index.paranoid_checks = paranoid;
    return ShardedPebEngine::Open(opts, &world_->store(), &world_->roles(),
                                  world_->catalog().snapshot());
  }

  /// Crash-after-N-durable-writes scenario, shared by several tests:
  /// build + load (no injection), arm the failpoint, apply until the crash
  /// fires, drop the engine like a killed process, reopen, compare.
  void RunKillMidBatch(int64_t writes_until_crash, bool torn) {
    FaultInjector injector;
    size_t committed = 0;
    {
      auto engine = std::make_unique<ShardedPebEngine>(
          DurableOptions(&injector, /*checkpoint_on_close=*/false),
          &world_->store(), &world_->roles(), world_->catalog().snapshot());
      ASSERT_TRUE(engine->durability_status().ok());
      ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
      injector.torn_on_crash.store(torn);
      injector.writes_until_crash.store(writes_until_crash);
      committed = ApplyUntilCrash(*engine);
      if (committed < batches_->size()) {
        // Poison is sticky: nothing commits after the crash.
        EXPECT_FALSE(engine->ApplyBatch((*batches_)[committed]).ok());
        EXPECT_FALSE(engine->Checkpoint().ok());
        EXPECT_FALSE(engine->durability_status().ok());
      }
    }
    const size_t durable = DurableBatches(committed);
    auto reopened = Reopen();
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    auto oracle = BuildOracle(durable);
    ExpectEquivalent(**reopened, *oracle, QueryTime(durable));
  }

  std::string path_;
  static const Workload* world_;
  static std::vector<std::vector<UpdateEvent>>* batches_;
};

const Workload* CrashRecoveryTest::world_ = nullptr;
std::vector<std::vector<UpdateEvent>>* CrashRecoveryTest::batches_ = nullptr;

// ---------------------------------------------------------------------------
// Kill mid-batch at counted failpoints
// ---------------------------------------------------------------------------

TEST_F(CrashRecoveryTest, CrashOnFirstWalAppend) {
  RunKillMidBatch(0, /*torn=*/false);
}

TEST_F(CrashRecoveryTest, CrashMidStream) {
  RunKillMidBatch(5, /*torn=*/false);
}

TEST_F(CrashRecoveryTest, CrashLate) { RunKillMidBatch(9, /*torn=*/false); }

TEST_F(CrashRecoveryTest, TornWalRecordOnCrash) {
  // The fatal append persists half its frame: recovery's CRC check must
  // treat it as end-of-log, not garbage-replay it.
  RunKillMidBatch(4, /*torn=*/true);
}

TEST_F(CrashRecoveryTest, EioOnWalSync) {
  FaultInjector injector;
  size_t committed = 0;
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(&injector, /*checkpoint_on_close=*/false),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
    committed = 3;
    for (size_t b = 0; b < committed; ++b) {
      ASSERT_TRUE(engine->ApplyBatch((*batches_)[b]).ok());
    }
    injector.fail_sync.store(true);
    // The append lands, the sync reports EIO: the batch reports an error
    // (so it is outside the oracle contract either way) and the engine is
    // poisoned.
    EXPECT_FALSE(engine->ApplyBatch((*batches_)[committed]).ok());
    EXPECT_FALSE(engine->Update(world_->dataset().objects[0]).ok());
    EXPECT_FALSE(engine->durability_status().ok());
  }
  // Closing the log flushed the errored batch's (fully appended) record,
  // so it IS replayed: an errored call promises only atomicity, and the
  // recovered state must match the durable log — here committed + 1.
  const size_t durable = DurableBatches(committed);
  EXPECT_EQ(durable, committed + 1);
  auto reopened = Reopen();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto oracle = BuildOracle(durable);
  ExpectEquivalent(**reopened, *oracle, QueryTime(durable));
}

// ---------------------------------------------------------------------------
// Recovery edge cases
// ---------------------------------------------------------------------------

TEST_F(CrashRecoveryTest, CleanShutdownEmptyWalReopens) {
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(nullptr, /*checkpoint_on_close=*/true),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
    ASSERT_TRUE(engine->ApplyBatch((*batches_)[0]).ok());
    ASSERT_TRUE(engine->ApplyBatch((*batches_)[1]).ok());
  }  // Destructor checkpoints clean: the WAL is empty on disk.
  {
    auto wal = WriteAheadLog::ReadAll(path_ + ".wal");
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE(wal->empty());
    // The close checkpoint marked the superblock clean. (After reopening,
    // the engine's own first checkpoint marks it in-use again.)
    auto raw = FileDiskManager::OpenExisting(path_);
    ASSERT_TRUE(raw.ok());
    EXPECT_TRUE((*raw)->clean_shutdown());
  }
  auto reopened = Reopen();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // A clean open has nothing to fold, so it leaves the superblock (and its
  // clean flag) untouched until the next checkpoint.
  EXPECT_TRUE((*reopened)->durable_store()->clean_shutdown());
  EXPECT_EQ((*reopened)->durable_store()->dirty_page_count(), 0u);
  auto oracle = BuildOracle(2);
  ExpectEquivalent(**reopened, *oracle, QueryTime(2));
}

TEST_F(CrashRecoveryTest, TornFinalWalRecordDropsOnlyLastBatch) {
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(nullptr, /*checkpoint_on_close=*/false),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
    for (size_t b = 0; b < 4; ++b) {
      ASSERT_TRUE(engine->ApplyBatch((*batches_)[b]).ok());
    }
  }  // No close checkpoint: the four batches live only in the WAL.
  // Tear the last batch's record by truncating the file mid-frame — the
  // classic power cut after a partial write that beat the sync. Walk the
  // frames to find where that record starts (advisory merge markers may
  // trail it; those are cut along with it).
  const std::string wal_path = path_ + ".wal";
  auto records = WriteAheadLog::ReadAll(wal_path);
  ASSERT_TRUE(records.ok());
  constexpr uint64_t kFrameHeaderBytes = 4 + 4 + 8 + 1;
  uint64_t offset = 0, last_events_offset = 0;
  for (const auto& rec : *records) {
    if (rec.type == engine_wal::kEvents) last_events_offset = offset;
    offset += kFrameHeaderBytes + rec.payload.size();
  }
  std::filesystem::resize_file(wal_path, last_events_offset + 11);
  auto reopened = Reopen();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // Batch 3's record is torn -> dropped whole; batches 0-2 replay intact.
  auto oracle = BuildOracle(3);
  ExpectEquivalent(**reopened, *oracle, QueryTime(3));
}

TEST_F(CrashRecoveryTest, ParanoidChecksReopen) {
  FaultInjector injector;
  size_t committed = 0;
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(&injector, /*checkpoint_on_close=*/false),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
    injector.writes_until_crash.store(6);
    committed = ApplyUntilCrash(*engine);
  }
  const size_t durable = DurableBatches(committed);
  // paranoid_checks runs the full structural audit during replay batches
  // AND the explicit post-recovery validation.
  auto reopened = Reopen(nullptr, /*paranoid=*/true);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto oracle = BuildOracle(durable);
  ExpectEquivalent(**reopened, *oracle, QueryTime(durable));
}

TEST_F(CrashRecoveryTest, DoubleCrashDuringRecoveryConverges) {
  FaultInjector injector;
  size_t committed = 0;
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(&injector, /*checkpoint_on_close=*/false),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
    injector.writes_until_crash.store(7);
    committed = ApplyUntilCrash(*engine);
    ASSERT_LT(committed, batches_->size());
  }
  const size_t durable = DurableBatches(committed);
  // First recovery attempt crashes during its own final checkpoint (the
  // fold of replayed state into the file). Recovery writes nothing durable
  // before that checkpoint, so however far it got, the second attempt
  // replays from a consistent file + WAL.
  injector.Reset();
  injector.writes_until_crash.store(10);
  auto crashed_open = Reopen(&injector);
  EXPECT_FALSE(crashed_open.ok());
  // Second attempt: no faults. Must converge to the same oracle.
  auto reopened = Reopen();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto oracle = BuildOracle(durable);
  ExpectEquivalent(**reopened, *oracle, QueryTime(durable));
}

// ---------------------------------------------------------------------------
// Continuous queries across a crash
// ---------------------------------------------------------------------------

TEST_F(CrashRecoveryTest, ContinuousEventStreamsMatchAfterRecovery) {
  FaultInjector injector;
  size_t committed = 0;
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(&injector, /*checkpoint_on_close=*/false),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
    injector.writes_until_crash.store(4);
    committed = ApplyUntilCrash(*engine);
  }
  const size_t durable = DurableBatches(committed);
  auto reopened = Reopen();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto oracle = BuildOracle(durable);

  // Identical continuous-query behavior from the recovered state on: both
  // services register the same standing query, apply the same remaining
  // batches, and must emit identical membership event streams.
  MovingObjectService recovered_svc(reopened->get(), &world_->store(),
                                    &world_->roles(), &world_->encoding());
  MovingObjectService oracle_svc(oracle.get(), &world_->store(),
                                 &world_->roles(), &world_->encoding());
  const Rect district = Rect::CenteredSquare({500, 500}, 320.0);
  const Timestamp t0 = QueryTime(durable);
  auto reg_a = recovered_svc.Execute(
      service::QueryRequest::RegisterContinuous(3, district, t0));
  auto reg_b = oracle_svc.Execute(
      service::QueryRequest::RegisterContinuous(3, district, t0));
  ASSERT_TRUE(reg_a.ok()) << reg_a.status;
  ASSERT_TRUE(reg_b.ok()) << reg_b.status;
  ASSERT_EQ(*recovered_svc.ContinuousResult(reg_a.continuous_id),
            *oracle_svc.ContinuousResult(reg_b.continuous_id));

  for (size_t b = durable; b < batches_->size(); ++b) {
    ASSERT_TRUE(recovered_svc.ApplyBatch((*batches_)[b]).ok());
    ASSERT_TRUE(oracle_svc.ApplyBatch((*batches_)[b]).ok());
    EXPECT_EQ(recovered_svc.TakeContinuousEvents(),
              oracle_svc.TakeContinuousEvents())
        << "batch " << b;
    EXPECT_EQ(*recovered_svc.ContinuousResult(reg_a.continuous_id),
              *oracle_svc.ContinuousResult(reg_b.continuous_id))
        << "batch " << b;
  }
}

// ---------------------------------------------------------------------------
// Non-crash durability plumbing
// ---------------------------------------------------------------------------

TEST_F(CrashRecoveryTest, CheckpointTruncatesWalAndSurvivesReopen) {
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(nullptr, /*checkpoint_on_close=*/false),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
    ASSERT_TRUE(engine->ApplyBatch((*batches_)[0]).ok());
    auto wal = WriteAheadLog::ReadAll(path_ + ".wal");
    ASSERT_TRUE(wal.ok());
    EXPECT_FALSE(wal->empty());
    ASSERT_TRUE(engine->Checkpoint().ok());
    wal = WriteAheadLog::ReadAll(path_ + ".wal");
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE(wal->empty());
    EXPECT_EQ(engine->durable_store()->dirty_page_count(), 0u);
    // More batches after the checkpoint land in the fresh log.
    ASSERT_TRUE(engine->ApplyBatch((*batches_)[1]).ok());
  }
  auto reopened = Reopen();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto oracle = BuildOracle(2);
  ExpectEquivalent(**reopened, *oracle, QueryTime(2));
}

// Regression: a failed Open() used to destroy the database. Its error paths
// destroyed the half-recovered engine, whose destructor (checkpoint_on_close
// defaults to true) committed the partial shard manifest as a new clean
// generation and truncated the WAL. The close checkpoint is now disarmed
// until recovery fully succeeds.
TEST_F(CrashRecoveryTest, FailedOpenLeavesDatabaseIntact) {
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(nullptr, /*checkpoint_on_close=*/true),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
    ASSERT_TRUE(engine->ApplyBatch((*batches_)[0]).ok());
  }
  // A misconfigured open fails — with checkpoint_on_close left at its
  // default true, exactly the configuration that used to clobber the file.
  EngineOptions wrong_shards =
      DurableOptions(nullptr, /*checkpoint_on_close=*/true);
  wrong_shards.num_shards = 5;
  auto open = ShardedPebEngine::Open(wrong_shards, &world_->store(),
                                     &world_->roles(),
                                     world_->catalog().snapshot());
  ASSERT_FALSE(open.ok());
  // The database survived: a correctly configured open still matches the
  // oracle.
  auto reopened = Reopen();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto oracle = BuildOracle(1);
  ExpectEquivalent(**reopened, *oracle, QueryTime(1));
}

// Regression: constructing a FRESH durable engine at a path that already
// holds a database used to truncate both the file and its WAL. It now
// poisons the new engine and leaves the database alone.
TEST_F(CrashRecoveryTest, FreshEngineRefusesExistingDatabase) {
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(nullptr, /*checkpoint_on_close=*/true),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
    ASSERT_TRUE(engine->ApplyBatch((*batches_)[0]).ok());
  }
  {
    ShardedPebEngine clobber(DurableOptions(nullptr, true), &world_->store(),
                             &world_->roles(), world_->catalog().snapshot());
    EXPECT_FALSE(clobber.durability_status().ok());
  }
  auto reopened = Reopen();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto oracle = BuildOracle(1);
  ExpectEquivalent(**reopened, *oracle, QueryTime(1));
}

TEST_F(CrashRecoveryTest, OpenRejectsBadConfigurations) {
  {
    auto engine = std::make_unique<ShardedPebEngine>(
        DurableOptions(nullptr, /*checkpoint_on_close=*/true),
        &world_->store(), &world_->roles(), world_->catalog().snapshot());
    ASSERT_TRUE(engine->LoadDataset(world_->dataset()).ok());
  }
  // Shard-count mismatch.
  EngineOptions wrong_shards = DurableOptions(nullptr, false);
  wrong_shards.num_shards = 5;
  auto open = ShardedPebEngine::Open(wrong_shards, &world_->store(),
                                     &world_->roles(),
                                     world_->catalog().snapshot());
  EXPECT_FALSE(open.ok());
  // Missing path.
  EngineOptions no_path = DurableOptions(nullptr, false);
  no_path.durability.path.clear();
  open = ShardedPebEngine::Open(no_path, &world_->store(), &world_->roles(),
                                world_->catalog().snapshot());
  EXPECT_TRUE(open.status().IsInvalidArgument());
  // In-memory engines reject Checkpoint().
  ShardedPebEngine mem(OracleOptions(), &world_->store(), &world_->roles(),
                       world_->catalog().snapshot());
  EXPECT_TRUE(mem.Checkpoint().IsInvalidArgument());
}

}  // namespace
}  // namespace peb
