// End-to-end persistence path: the whole index stack (B+-tree under the
// buffer pool) on the file-backed disk manager, proving the system is
// genuinely disk-resident and not dependent on the in-memory shortcut.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "btree/btree.h"
#include "btree/btree_traits.h"
#include "common/rng.h"
#include "motion/uniform_generator.h"
#include "peb/peb_tree.h"
#include "policy/policy_generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace peb {
namespace {

class FileBackedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/peb_file_backed_test.db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FileBackedTest, BTreeFuzzOnRealFile) {
  FileDiskManager disk(path_);
  ASSERT_TRUE(disk.status().ok());
  BufferPool pool(&disk, BufferPoolOptions{16});  // Tiny pool: real I/O.
  BTree<TinyFanoutTraits> tree(&pool);
  std::map<uint64_t, uint64_t> model;
  Rng rng(404);
  for (int op = 0; op < 1500; ++op) {
    uint64_t key = rng.NextBelow(300);
    if (rng.NextDouble() < 0.6) {
      if (tree.Insert(key, key * 3).ok()) model[key] = key * 3;
    } else {
      if (tree.Delete(key).ok()) model.erase(key);
    }
  }
  ASSERT_TRUE(tree.Validate().ok());
  ASSERT_EQ(tree.stats().num_entries, model.size());
  auto it = tree.SeekFirst();
  ASSERT_TRUE(it.ok());
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key(), k);
    EXPECT_EQ(it->value(), v);
    ASSERT_TRUE(it->Next().ok());
  }
  // Data actually hit the file.
  EXPECT_GT(pool.stats().physical_writes, 0u);
  EXPECT_GT(disk.capacity(), 0u);
}

TEST_F(FileBackedTest, PersistAndReopenPebTree) {
  const size_t users = 300;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 120.0;
  gen.seed = 71;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 8;
  pg.seed = 72;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant);

  PebTreeOptions opt;
  opt.index.grid_bits = 8;

  // Session 1: build the index on a real file, record answers + manifest.
  PebTreeManifest manifest;
  std::vector<std::vector<UserId>> expected;
  Rng rng(73);
  std::vector<std::pair<UserId, Rect>> queries;
  for (int q = 0; q < 8; ++q) {
    queries.push_back({static_cast<UserId>(rng.NextBelow(users)),
                       Rect::CenteredSquare(
                           {rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                           400)});
  }
  {
    FileDiskManager disk(path_);
    ASSERT_TRUE(disk.status().ok());
    BufferPool pool(&disk, BufferPoolOptions{32});
    PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
    for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());
    for (const auto& [issuer, range] : queries) {
      auto res = tree.RangeQuery(issuer, range, 120.0);
      ASSERT_TRUE(res.ok());
      expected.push_back(*res);
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    manifest = tree.Manifest();
    EXPECT_NE(manifest.root, kInvalidPageId);
    // Flushing hands pages to the overlay; only Commit() makes them (and the
    // superblock's next-page watermark) durable.
    EXPECT_GT(disk.dirty_page_count(), 0u);
    ASSERT_TRUE(disk.Commit(/*metadata=*/"", /*checkpoint_seq=*/1,
                            /*epoch=*/0, /*clean=*/true)
                    .ok());
    EXPECT_EQ(disk.dirty_page_count(), 0u);
  }

  // Session 2: reopen the same file without truncation, attach, compare.
  {
    auto disk = FileDiskManager::OpenExisting(path_);
    ASSERT_TRUE(disk.ok()) << disk.status();
    EXPECT_GE((*disk)->capacity(),
              manifest.stats.num_leaves + manifest.stats.num_internals);
    BufferPool pool(disk->get(), BufferPoolOptions{32});
    PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
    ASSERT_TRUE(tree.AttachExisting(manifest).ok());
    EXPECT_EQ(tree.size(), users);
    for (size_t q = 0; q < queries.size(); ++q) {
      auto res = tree.RangeQuery(queries[q].first, queries[q].second, 120.0);
      ASSERT_TRUE(res.ok());
      EXPECT_EQ(*res, expected[q]) << "query " << q;
    }
    // The reopened index accepts further mutations.
    ASSERT_TRUE(tree.Delete(0).ok());
    EXPECT_EQ(tree.size(), users - 1);
  }
}

TEST_F(FileBackedTest, OpenExistingRejectsMissingOrCorruptFiles) {
  auto missing = FileDiskManager::OpenExisting(path_ + ".nope");
  EXPECT_TRUE(missing.status().IsIOError());
  // Non-page-aligned file.
  {
    std::ofstream f(path_, std::ios::binary);
    f << "not a page";
  }
  auto corrupt = FileDiskManager::OpenExisting(path_);
  EXPECT_TRUE(corrupt.status().IsCorruption());
}

TEST_F(FileBackedTest, AttachRejectsBogusManifests) {
  PolicyStore store;
  RoleRegistry roles;
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(store, 10, compat, {}, quant);

  FileDiskManager disk(path_);
  ASSERT_TRUE(disk.status().ok());
  BufferPool pool(&disk, BufferPoolOptions{16});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &store, &roles, &enc);

  PebTreeManifest bogus;
  bogus.root = 99;  // Nonexistent page.
  bogus.stats.num_entries = 5;
  EXPECT_FALSE(tree.AttachExisting(bogus).ok());
  // The handle is still usable as a fresh index afterwards.
  EXPECT_TRUE(tree.Insert({1, {10, 10}, {0, 0}, 0}).ok());
}

TEST_F(FileBackedTest, PebTreeQueriesOnRealFile) {
  const size_t users = 400;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 120.0;
  gen.seed = 12;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 8;
  pg.seed = 13;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant);

  FileDiskManager disk(path_);
  ASSERT_TRUE(disk.status().ok());
  BufferPool pool(&disk, BufferPoolOptions{8});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rng rng(14);
  for (int q = 0; q < 10; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(users));
    Rect range = Rect::CenteredSquare(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 350);
    auto got = tree.RangeQuery(issuer, range, 120.0);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePrq(ds, gp.store, gp.roles, issuer, range,
                                       120.0);
    EXPECT_EQ(*got, want);
  }
  EXPECT_GT(pool.stats().physical_reads, 0u);
}

}  // namespace
}  // namespace peb
