#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "motion/moving_object.h"
#include "motion/network_generator.h"
#include "motion/uniform_generator.h"
#include "motion/update_stream.h"

namespace peb {
namespace {

TEST(MovingObject, LinearExtrapolationBothDirections) {
  MovingObject o;
  o.pos = {100, 200};
  o.vel = {2, -1};
  o.tu = 50;
  EXPECT_EQ(o.PositionAt(50), (Point{100, 200}));
  EXPECT_EQ(o.PositionAt(60), (Point{120, 190}));
  EXPECT_EQ(o.PositionAt(40), (Point{80, 210}));  // Backwards in time.
}

// ---------------------------------------------------------------------------
// Uniform generator
// ---------------------------------------------------------------------------

TEST(UniformGenerator, RespectsBoundsAndCount) {
  UniformGeneratorOptions opt;
  opt.num_objects = 5000;
  opt.space_side = 1000.0;
  opt.max_speed = 3.0;
  opt.seed = 11;
  Dataset ds = GenerateUniformDataset(opt);
  ASSERT_EQ(ds.objects.size(), 5000u);
  for (const MovingObject& o : ds.objects) {
    EXPECT_GE(o.pos.x, 0.0);
    EXPECT_LT(o.pos.x, 1000.0);
    EXPECT_GE(o.pos.y, 0.0);
    EXPECT_LT(o.pos.y, 1000.0);
    EXPECT_LE(o.vel.Norm(), 3.0 + 1e-9);
    EXPECT_EQ(o.tu, 0.0);
  }
  // Ids are dense 0..n-1.
  EXPECT_EQ(ds.objects.front().id, 0u);
  EXPECT_EQ(ds.objects.back().id, 4999u);
}

TEST(UniformGenerator, DeterministicPerSeed) {
  UniformGeneratorOptions opt;
  opt.num_objects = 100;
  opt.seed = 5;
  Dataset a = GenerateUniformDataset(opt);
  Dataset b = GenerateUniformDataset(opt);
  opt.seed = 6;
  Dataset c = GenerateUniformDataset(opt);
  EXPECT_EQ(a.objects[50].pos, b.objects[50].pos);
  EXPECT_NE(a.objects[50].pos, c.objects[50].pos);
}

TEST(UniformGenerator, StaggeredUpdateTimes) {
  UniformGeneratorOptions opt;
  opt.num_objects = 2000;
  opt.stagger_window = 120.0;
  opt.seed = 8;
  Dataset ds = GenerateUniformDataset(opt);
  double lo = 1e9, hi = -1e9;
  for (const MovingObject& o : ds.objects) {
    lo = std::min(lo, o.tu);
    hi = std::max(hi, o.tu);
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LT(hi, 120.0);
  EXPECT_GT(hi - lo, 60.0);  // Actually spread out.
}

TEST(UniformGenerator, SpeedsCoverTheRange) {
  UniformGeneratorOptions opt;
  opt.num_objects = 5000;
  opt.max_speed = 3.0;
  opt.seed = 13;
  Dataset ds = GenerateUniformDataset(opt);
  int slow = 0, fast = 0;
  for (const MovingObject& o : ds.objects) {
    double s = o.vel.Norm();
    if (s < 1.0) slow++;
    if (s > 2.0) fast++;
  }
  EXPECT_GT(slow, 500);
  EXPECT_GT(fast, 500);
}

// ---------------------------------------------------------------------------
// Road network / network workload
// ---------------------------------------------------------------------------

TEST(RoadNetwork, GeneratedNetworkIsConnected) {
  for (size_t hubs : {2u, 5u, 25u, 100u, 500u}) {
    RoadNetwork net = RoadNetwork::Generate(hubs, 1000.0, 17);
    EXPECT_EQ(net.num_hubs(), hubs);
    EXPECT_TRUE(net.IsConnected()) << hubs << " hubs";
  }
}

TEST(RoadNetwork, HubsInsideSpaceAndSymmetricAdjacency) {
  RoadNetwork net = RoadNetwork::Generate(50, 1000.0, 23);
  for (size_t i = 0; i < net.num_hubs(); ++i) {
    EXPECT_GE(net.hub(i).x, 0.0);
    EXPECT_LT(net.hub(i).x, 1000.0);
    EXPECT_FALSE(net.neighbors(i).empty());
    for (size_t j : net.neighbors(i)) {
      ASSERT_NE(i, j);
      const auto& back = net.neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(NetworkWorkload, ObjectsStartOnEdgesWithGroupSpeeds) {
  NetworkWorkloadOptions opt;
  opt.num_objects = 2000;
  opt.num_hubs = 50;
  opt.seed = 3;
  NetworkWorkload w(opt);
  const Dataset& ds = w.initial_dataset();
  ASSERT_EQ(ds.objects.size(), 2000u);
  EXPECT_DOUBLE_EQ(ds.max_speed, 3.0);

  std::set<double> speeds;
  for (const MovingObject& o : ds.objects) {
    EXPECT_GE(o.pos.x, -1e-9);
    EXPECT_LE(o.pos.x, 1000.0 + 1e-9);
    double s = o.vel.Norm();
    EXPECT_LE(s, 3.0 + 1e-9);
    speeds.insert(std::round(s * 1000) / 1000);
  }
  // Speeds come from {0.75, 1.5, 3} x {1, ramp factor 0.5}:
  // {0.375, 0.75, 1.5, 3} (0.75 appears as both cruise and ramp).
  for (double s : speeds) {
    bool known = std::abs(s - 0.375) < 1e-6 || std::abs(s - 0.75) < 1e-6 ||
                 std::abs(s - 1.5) < 1e-6 || std::abs(s - 3.0) < 1e-6;
    EXPECT_TRUE(known) << "unexpected speed " << s;
  }
  EXPECT_GE(speeds.size(), 3u);
}

TEST(NetworkWorkload, UpdatesAdvanceAlongRoutes) {
  NetworkWorkloadOptions opt;
  opt.num_objects = 20;
  opt.num_hubs = 10;
  opt.seed = 9;
  NetworkWorkload w(opt);
  for (UserId id = 0; id < 20; ++id) {
    Timestamp prev = 0.0;
    for (int step = 0; step < 20; ++step) {
      Timestamp next = w.NextUpdateTime(id);
      EXPECT_GT(next, prev - 1e-9);
      UpdateEvent ev = w.NextUpdate(id);
      EXPECT_NEAR(ev.t, next, 1e-9);
      EXPECT_EQ(ev.state.id, id);
      EXPECT_EQ(ev.state.tu, ev.t);
      // Position stays within the space (objects move hub-to-hub).
      EXPECT_GE(ev.state.pos.x, -1e-6);
      EXPECT_LE(ev.state.pos.x, 1000.0 + 1e-6);
      prev = next;
    }
  }
}

TEST(NetworkWorkload, FewHubsMeansMoreSkew) {
  // Spatial skew: with few hubs, objects concentrate near few locations.
  // We measure the fraction of objects in the densest 16x16 grid cell.
  auto max_cell_fraction = [](size_t hubs) {
    NetworkWorkloadOptions opt;
    opt.num_objects = 4000;
    opt.num_hubs = hubs;
    opt.seed = 31;
    NetworkWorkload w(opt);
    std::vector<int> cells(16 * 16, 0);
    for (const MovingObject& o : w.initial_dataset().objects) {
      int cx = std::min(15, static_cast<int>(o.pos.x / 62.5));
      int cy = std::min(15, static_cast<int>(o.pos.y / 62.5));
      cells[cy * 16 + cx]++;
    }
    return *std::max_element(cells.begin(), cells.end()) / 4000.0;
  };
  EXPECT_GT(max_cell_fraction(5), max_cell_fraction(500));
}

// ---------------------------------------------------------------------------
// Update streams
// ---------------------------------------------------------------------------

TEST(ReflectIntoSpace, FoldsPositionsAndFlipsVelocity) {
  Point p{-10, 500};
  Point v{-1, 1};
  ReflectIntoSpace(1000.0, &p, &v);
  EXPECT_DOUBLE_EQ(p.x, 10.0);
  EXPECT_DOUBLE_EQ(v.x, 1.0);  // Flipped.
  EXPECT_DOUBLE_EQ(p.y, 500.0);
  EXPECT_DOUBLE_EQ(v.y, 1.0);  // Unchanged.

  Point q{1250, 2010};
  Point u{2, 3};
  ReflectIntoSpace(1000.0, &q, &u);
  EXPECT_DOUBLE_EQ(q.x, 750.0);
  EXPECT_DOUBLE_EQ(u.x, -2.0);
  EXPECT_DOUBLE_EQ(q.y, 10.0);   // 2010 mod 2000 = 10, no mirror.
  EXPECT_DOUBLE_EQ(u.y, 3.0);
}

TEST(UniformUpdateStream, EventsAreTimeOrderedAndInBounds) {
  UniformGeneratorOptions gen;
  gen.num_objects = 200;
  gen.seed = 21;
  Dataset ds = GenerateUniformDataset(gen);
  UniformUpdateStreamOptions opt;
  opt.max_update_interval = 120.0;
  opt.seed = 22;
  UniformUpdateStream stream(ds, opt);
  Timestamp prev = -1.0;
  for (int i = 0; i < 2000; ++i) {
    UpdateEvent ev = stream.Next();
    EXPECT_GE(ev.t, prev);
    prev = ev.t;
    EXPECT_GE(ev.state.pos.x, 0.0);
    EXPECT_LE(ev.state.pos.x, 1000.0);
    EXPECT_GE(ev.state.pos.y, 0.0);
    EXPECT_LE(ev.state.pos.y, 1000.0);
    EXPECT_EQ(ev.state.tu, ev.t);
    EXPECT_LE(ev.state.vel.Norm(), 3.0 + 1e-9);
  }
}

TEST(UniformUpdateStream, EveryObjectUpdatesWithinMaxInterval) {
  UniformGeneratorOptions gen;
  gen.num_objects = 100;
  gen.seed = 33;
  Dataset ds = GenerateUniformDataset(gen);
  UniformUpdateStreamOptions opt;
  opt.max_update_interval = 120.0;
  opt.seed = 34;
  UniformUpdateStream stream(ds, opt);
  std::vector<Timestamp> last(100, 0.0);
  for (int i = 0; i < 3000; ++i) {
    UpdateEvent ev = stream.Next();
    EXPECT_LE(ev.t - last[ev.state.id], 120.0 + 1e-9)
        << "object " << ev.state.id << " violated the update contract";
    last[ev.state.id] = ev.t;
  }
}

TEST(NetworkUpdateStream, RespectsMaxUpdateInterval) {
  NetworkWorkloadOptions gen;
  gen.num_objects = 100;
  gen.num_hubs = 20;
  gen.seed = 41;
  NetworkWorkload w(gen);
  NetworkUpdateStream stream(&w, 120.0);
  std::vector<Timestamp> last(100, 0.0);
  Timestamp prev = -1.0;
  for (int i = 0; i < 3000; ++i) {
    UpdateEvent ev = stream.Next();
    EXPECT_GE(ev.t, prev - 1e-6);
    prev = std::max(prev, ev.t);
    EXPECT_LE(ev.t - last[ev.state.id], 120.0 + 1e-6);
    last[ev.state.id] = ev.t;
  }
}

}  // namespace
}  // namespace peb
