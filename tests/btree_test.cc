#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_traits.h"
#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace peb {
namespace {

// ---------------------------------------------------------------------------
// Structural tests with tiny fanout (4 entries per node) to force deep
// trees, splits, borrows, and merges quickly.
// ---------------------------------------------------------------------------

class TinyBTreeTest : public ::testing::Test {
 protected:
  TinyBTreeTest()
      : pool_(&disk_, BufferPoolOptions{128}), tree_(&pool_) {}

  InMemoryDiskManager disk_;
  BufferPool pool_;
  BTree<TinyFanoutTraits> tree_;
};

TEST_F(TinyBTreeTest, EmptyTree) {
  EXPECT_TRUE(tree_.empty());
  EXPECT_TRUE(tree_.Lookup(1).status().IsNotFound());
  EXPECT_TRUE(tree_.Delete(1).IsNotFound());
  auto it = tree_.SeekFirst();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TinyBTreeTest, SingleInsertLookup) {
  ASSERT_TRUE(tree_.Insert(5, 50).ok());
  auto v = tree_.Lookup(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 50u);
  EXPECT_EQ(tree_.stats().num_entries, 1u);
  EXPECT_EQ(tree_.stats().height, 1u);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TinyBTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(tree_.Insert(5, 50).ok());
  EXPECT_TRUE(tree_.Insert(5, 51).IsAlreadyExists());
  auto v = tree_.Lookup(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 50u);  // Original value kept.
}

TEST_F(TinyBTreeTest, SequentialInsertGrowsHeight) {
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree_.Insert(k, k * 10).ok());
    ASSERT_TRUE(tree_.Validate().ok()) << "after insert " << k;
  }
  EXPECT_EQ(tree_.stats().num_entries, 100u);
  EXPECT_GE(tree_.stats().height, 3u);
  for (uint64_t k = 0; k < 100; ++k) {
    auto v = tree_.Lookup(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, k * 10);
  }
}

TEST_F(TinyBTreeTest, ReverseInsertAlsoBalanced) {
  for (uint64_t k = 100; k > 0; --k) {
    ASSERT_TRUE(tree_.Insert(k, k).ok());
  }
  ASSERT_TRUE(tree_.Validate().ok());
  EXPECT_EQ(tree_.stats().num_entries, 100u);
}

TEST_F(TinyBTreeTest, DeleteToEmptyAndReuse) {
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(tree_.Insert(k, k).ok());
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(tree_.Delete(k).ok()) << k;
    ASSERT_TRUE(tree_.Validate().ok()) << "after delete " << k;
  }
  EXPECT_TRUE(tree_.empty());
  EXPECT_EQ(tree_.stats().height, 0u);
  // Tree is usable again after complete emptying.
  ASSERT_TRUE(tree_.Insert(7, 70).ok());
  auto v = tree_.Lookup(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 70u);
}

TEST_F(TinyBTreeTest, DeleteInReverseOrder) {
  for (uint64_t k = 0; k < 60; ++k) ASSERT_TRUE(tree_.Insert(k, k).ok());
  for (uint64_t k = 60; k > 0; --k) {
    ASSERT_TRUE(tree_.Delete(k - 1).ok());
    ASSERT_TRUE(tree_.Validate().ok());
  }
  EXPECT_TRUE(tree_.empty());
}

TEST_F(TinyBTreeTest, DeleteMissingKeyLeavesTreeIntact) {
  for (uint64_t k = 0; k < 20; k += 2) ASSERT_TRUE(tree_.Insert(k, k).ok());
  EXPECT_TRUE(tree_.Delete(3).IsNotFound());
  EXPECT_TRUE(tree_.Delete(21).IsNotFound());
  EXPECT_EQ(tree_.stats().num_entries, 10u);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TinyBTreeTest, IteratorWalksSortedOrder) {
  std::vector<uint64_t> keys = {42, 7, 99, 3, 56, 12, 77, 31, 8, 64};
  for (uint64_t k : keys) ASSERT_TRUE(tree_.Insert(k, k + 1).ok());
  std::sort(keys.begin(), keys.end());

  auto it = tree_.SeekFirst();
  ASSERT_TRUE(it.ok());
  std::vector<uint64_t> seen;
  while (it->Valid()) {
    seen.push_back(it->key());
    EXPECT_EQ(it->value(), it->key() + 1);
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(seen, keys);
}

TEST_F(TinyBTreeTest, SeekGEFindsBoundaries) {
  for (uint64_t k = 10; k <= 100; k += 10) {
    ASSERT_TRUE(tree_.Insert(k, k).ok());
  }
  struct Case {
    uint64_t seek;
    uint64_t expect;
  };
  for (Case c : std::vector<Case>{{5, 10}, {10, 10}, {11, 20}, {95, 100},
                                  {100, 100}}) {
    auto it = tree_.SeekGE(c.seek);
    ASSERT_TRUE(it.ok());
    ASSERT_TRUE(it->Valid()) << "seek " << c.seek;
    EXPECT_EQ(it->key(), c.expect) << "seek " << c.seek;
  }
  auto past = tree_.SeekGE(101);
  ASSERT_TRUE(past.ok());
  EXPECT_FALSE(past->Valid());
}

TEST_F(TinyBTreeTest, RangeScanAcrossLeaves) {
  for (uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(tree_.Insert(k, k).ok());
  auto it = tree_.SeekGE(50);
  ASSERT_TRUE(it.ok());
  uint64_t expect = 50;
  while (it->Valid() && it->key() <= 149) {
    EXPECT_EQ(it->key(), expect);
    expect++;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(expect, 150u);
  EXPECT_GT(it->leaves_visited(), 1u);
}

// ---------------------------------------------------------------------------
// Randomized differential test against std::map (the core property suite).
// ---------------------------------------------------------------------------

struct FuzzParams {
  uint64_t seed;
  int ops;
  uint64_t key_space;
  double insert_bias;
};

class BTreeFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(BTreeFuzzTest, MatchesStdMapUnderRandomOps) {
  const FuzzParams p = GetParam();
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{256});
  BTree<TinyFanoutTraits> tree(&pool);
  std::map<uint64_t, uint64_t> model;
  Rng rng(p.seed);

  for (int op = 0; op < p.ops; ++op) {
    uint64_t key = rng.NextBelow(p.key_space);
    if (rng.NextDouble() < p.insert_bias) {
      uint64_t value = rng.Next64();
      Status s = tree.Insert(key, value);
      if (model.contains(key)) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else {
        ASSERT_TRUE(s.ok());
        model[key] = value;
      }
    } else {
      Status s = tree.Delete(key);
      if (model.contains(key)) {
        ASSERT_TRUE(s.ok());
        model.erase(key);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    }
    if (op % 64 == 0) {
      ASSERT_TRUE(tree.Validate().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(tree.Validate().ok());
  ASSERT_EQ(tree.stats().num_entries, model.size());

  // Full-order comparison via iterator.
  auto it = tree.SeekFirst();
  ASSERT_TRUE(it.ok());
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key(), k);
    EXPECT_EQ(it->value(), v);
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_FALSE(it->Valid());

  // Point lookups for hits and misses.
  for (int i = 0; i < 200; ++i) {
    uint64_t key = rng.NextBelow(p.key_space);
    auto v = tree.Lookup(key);
    if (model.contains(key)) {
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, model[key]);
    } else {
      EXPECT_TRUE(v.status().IsNotFound());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, BTreeFuzzTest,
    ::testing::Values(FuzzParams{1, 2000, 500, 0.7},    // Growing.
                      FuzzParams{2, 2000, 100, 0.5},    // Heavy collisions.
                      FuzzParams{3, 3000, 5000, 0.6},   // Sparse keys.
                      FuzzParams{4, 3000, 300, 0.3},    // Shrinking.
                      FuzzParams{5, 5000, 1000, 0.5},   // Long mixed.
                      FuzzParams{6, 1500, 16, 0.5}));   // Tiny key space.

// ---------------------------------------------------------------------------
// Full-page fanout smoke test (the production ObjectTreeTraits geometry).
// ---------------------------------------------------------------------------

TEST(ObjectBTree, CompositeKeyOrderAndCapacity) {
  // 12-byte key + 28-byte value in a 4 KiB page.
  EXPECT_GE(ObjectBTree::kLeafCapacity, 70u);
  EXPECT_GE(ObjectBTree::kInternalCapacity, 250u);

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  ObjectBTree tree(&pool);

  // Same primary, different uid: both coexist and order by uid.
  ObjectRecord rec;
  rec.x = 1.5;
  ASSERT_TRUE(tree.Insert({42, 7}, rec).ok());
  rec.x = 2.5;
  ASSERT_TRUE(tree.Insert({42, 3}, rec).ok());
  rec.x = 3.5;
  ASSERT_TRUE(tree.Insert({41, 9}, rec).ok());

  auto it = tree.SeekFirst();
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().primary, 41u);
  ASSERT_TRUE(it->Next().ok());
  EXPECT_EQ(it->key().primary, 42u);
  EXPECT_EQ(it->key().uid, 3u);
  ASSERT_TRUE(it->Next().ok());
  EXPECT_EQ(it->key().uid, 7u);
  EXPECT_DOUBLE_EQ(it->value().x, 1.5);
}

TEST(ObjectBTree, TenThousandEntriesValidate) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  ObjectBTree tree(&pool);
  Rng rng(77);
  ObjectRecord rec;
  for (int i = 0; i < 10000; ++i) {
    CompositeKey key{rng.Next64() >> 20, static_cast<UserId>(i)};
    rec.tu = i;
    ASSERT_TRUE(tree.Insert(key, rec).ok());
  }
  EXPECT_EQ(tree.stats().num_entries, 10000u);
  ASSERT_TRUE(tree.Validate().ok());
  // Height should be small with ~100-entry leaves.
  EXPECT_LE(tree.stats().height, 3u);
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

class BulkLoadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BulkLoadTest, MatchesIncrementalBuild) {
  size_t n = GetParam();
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (size_t i = 0; i < n; ++i) entries.push_back({i * 3 + 1, i});

  InMemoryDiskManager disk_a;
  BufferPool pool_a(&disk_a, BufferPoolOptions{256});
  BTree<TinyFanoutTraits> bulk(&pool_a);
  ASSERT_TRUE(bulk.BulkLoad(entries).ok());
  ASSERT_TRUE(bulk.Validate().ok()) << "n=" << n;
  EXPECT_EQ(bulk.stats().num_entries, n);

  InMemoryDiskManager disk_b;
  BufferPool pool_b(&disk_b, BufferPoolOptions{256});
  BTree<TinyFanoutTraits> incremental(&pool_b);
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(incremental.Insert(k, v).ok());
  }

  auto ita = bulk.SeekFirst();
  auto itb = incremental.SeekFirst();
  ASSERT_TRUE(ita.ok());
  ASSERT_TRUE(itb.ok());
  while (itb->Valid()) {
    ASSERT_TRUE(ita->Valid());
    EXPECT_EQ(ita->key(), itb->key());
    EXPECT_EQ(ita->value(), itb->value());
    ASSERT_TRUE(ita->Next().ok());
    ASSERT_TRUE(itb->Next().ok());
  }
  EXPECT_FALSE(ita->Valid());
  // Bulk-loaded trees pack leaves: never more leaves than incremental.
  EXPECT_LE(bulk.stats().num_leaves, incremental.stats().num_leaves);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadTest,
                         ::testing::Values(0u, 1u, 3u, 4u, 5u, 8u, 9u, 16u,
                                           17u, 100u, 1000u, 4096u));

TEST(BulkLoad, SupportsMutationAfterwards) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{256});
  BTree<TinyFanoutTraits> tree(&pool);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < 500; ++i) entries.push_back({i * 2, i});
  ASSERT_TRUE(tree.BulkLoad(entries).ok());

  // Odd keys insert into the packed tree; every second even key deletes.
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(i * 2 + 1, i).ok());
  }
  for (uint64_t i = 0; i < 500; i += 2) {
    ASSERT_TRUE(tree.Delete(i * 2).ok());
  }
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.stats().num_entries, 750u);
}

TEST(BulkLoad, RejectsBadInput) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  BTree<TinyFanoutTraits> tree(&pool);
  // Not sorted.
  EXPECT_TRUE(tree.BulkLoad({{5, 0}, {3, 0}}).IsInvalidArgument());
  // Duplicate keys.
  EXPECT_TRUE(tree.BulkLoad({{3, 0}, {3, 1}}).IsInvalidArgument());
  // Non-empty tree.
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  EXPECT_TRUE(tree.BulkLoad({{2, 0}}).IsInvalidArgument());
}

TEST(BulkLoad, FullPageFanout) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  ObjectBTree tree(&pool);
  std::vector<std::pair<CompositeKey, ObjectRecord>> entries;
  for (uint32_t i = 0; i < 50000; ++i) {
    entries.push_back({{static_cast<uint64_t>(i) * 7, i}, ObjectRecord{}});
  }
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.stats().num_entries, 50000u);
  // Packed: ~total/leaf_capacity leaves.
  EXPECT_LE(tree.stats().num_leaves,
            50000 / ObjectBTree::kLeafCapacity + 2);
}

// ---------------------------------------------------------------------------
// Leaf-chain invariant and LeafCursor fast path
// ---------------------------------------------------------------------------

// Forward walk of the leaf chain visits every key in order after random
// insert/delete batches (the invariant the cursor fast path relies on).
TEST(LeafChain, ForwardWalkVisitsEveryKeyAfterRandomBatches) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{256});
  BTree<TinyFanoutTraits> tree(&pool);
  std::map<uint64_t, uint64_t> model;
  Rng rng(4242);

  for (int batch = 0; batch < 20; ++batch) {
    // Alternate insert-heavy and delete-heavy batches.
    double insert_bias = (batch % 2 == 0) ? 0.85 : 0.3;
    for (int op = 0; op < 150; ++op) {
      uint64_t key = rng.NextBelow(2000);
      if (rng.NextDouble() < insert_bias) {
        if (tree.Insert(key, key * 3).ok()) model[key] = key * 3;
      } else {
        if (tree.Delete(key).ok()) model.erase(key);
      }
    }
    ASSERT_TRUE(tree.Validate().ok()) << "batch " << batch;

    auto it = tree.SeekFirst();
    ASSERT_TRUE(it.ok());
    size_t visited = 0;
    uint64_t prev = 0;
    for (const auto& [k, v] : model) {
      ASSERT_TRUE(it->Valid()) << "chain ended early in batch " << batch;
      EXPECT_EQ(it->key(), k);
      EXPECT_EQ(it->value(), v);
      if (visited > 0) {
        EXPECT_GT(it->key(), prev);
      }
      prev = it->key();
      visited++;
      ASSERT_TRUE(it->Next().ok());
    }
    EXPECT_FALSE(it->Valid()) << "chain has extra entries in batch " << batch;
    EXPECT_EQ(visited, model.size());
  }
}

class LeafCursorTest : public ::testing::Test {
 protected:
  LeafCursorTest() : pool_(&disk_, BufferPoolOptions{512}), tree_(&pool_) {}

  void Fill(size_t n, uint64_t stride) {
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(tree_.Insert(i * stride, i).ok());
    }
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  BTree<U64Traits> tree_;
};

TEST_F(LeafCursorTest, SeekMatchesIteratorForArbitraryTargets) {
  Fill(20000, 3);  // Keys 0, 3, ..., with gaps.
  auto cursor = tree_.NewCursor();
  Rng rng(7);
  for (int probe = 0; probe < 500; ++probe) {
    uint64_t target = rng.NextBelow(3 * 20000 + 10);
    ASSERT_TRUE(cursor.SeekGE(target).ok());
    auto it = tree_.SeekGE(target);
    ASSERT_TRUE(it.ok());
    ASSERT_EQ(cursor.Valid(), it->Valid()) << "target " << target;
    if (cursor.Valid()) {
      EXPECT_EQ(cursor.key(), it->key());
      EXPECT_EQ(cursor.value(), it->value());
      // Walk a few entries to check iteration parity too.
      for (int step = 0; step < 5 && cursor.Valid() && it->Valid(); ++step) {
        EXPECT_EQ(cursor.key(), it->key());
        ASSERT_TRUE(cursor.Next().ok());
        ASSERT_TRUE(it->Next().ok());
      }
      ASSERT_EQ(cursor.Valid(), it->Valid());
    }
  }
}

TEST_F(LeafCursorTest, AscendingSeeksReuseThePositionInsteadOfDescending) {
  Fill(20000, 1);
  auto cursor = tree_.NewCursor();
  size_t probes = 0;
  for (uint64_t target = 0; target < 20000; target += 40, ++probes) {
    ASSERT_TRUE(cursor.SeekGE(target).ok());
    ASSERT_TRUE(cursor.Valid());
    EXPECT_EQ(cursor.key(), target);
  }
  // Nearby ascending probes resolve via the sibling chain: the descent
  // count stays far below one-per-probe (the legacy Iterator cost).
  EXPECT_EQ(probes, 500u);
  EXPECT_LT(cursor.descents(), probes / 4);
  EXPECT_GT(cursor.chain_hops(), 0u);
}

TEST_F(LeafCursorTest, BackwardSeekFallsBackToDescent) {
  Fill(10000, 1);
  auto cursor = tree_.NewCursor();
  ASSERT_TRUE(cursor.SeekGE(9000).ok());
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), 9000u);
  size_t descents_before = cursor.descents();
  ASSERT_TRUE(cursor.SeekGE(100).ok());  // Behind the cursor.
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), 100u);
  EXPECT_EQ(cursor.descents(), descents_before + 1);
}

TEST_F(LeafCursorTest, FarForwardSeekBoundsChainHops) {
  Fill(20000, 1);
  auto cursor = tree_.NewCursor();
  ASSERT_TRUE(cursor.SeekGE(0).ok());
  size_t hops_before = cursor.chain_hops();
  ASSERT_TRUE(cursor.SeekGE(19999).ok());  // Thousands of leaves ahead.
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), 19999u);
  EXPECT_LE(cursor.chain_hops() - hops_before,
            BTree<U64Traits>::LeafCursor::kMaxChainHops + 1);
  EXPECT_GE(cursor.descents(), 2u);
}

TEST_F(LeafCursorTest, SeekPastEndInvalidatesAndRecovers) {
  Fill(100, 1);
  auto cursor = tree_.NewCursor();
  ASSERT_TRUE(cursor.SeekGE(1000).ok());
  EXPECT_FALSE(cursor.Valid());
  // An invalid cursor still seeks correctly (fresh descent).
  ASSERT_TRUE(cursor.SeekGE(50).ok());
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), 50u);
}

TEST_F(LeafCursorTest, EmptyTreeSeekIsInvalid) {
  auto cursor = tree_.NewCursor();
  ASSERT_TRUE(cursor.SeekGE(1).ok());
  EXPECT_FALSE(cursor.Valid());
}

TEST(LeafCursorPrefetch, WarmsTheNextLeafOnCrossings) {
  // Pool (16 frames) much smaller than the tree, so sibling leaves are not
  // resident when the cursor crosses into them.
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{16});
  BTree<U64Traits> tree(&pool);
  for (uint64_t i = 0; i < 20000; ++i) {
    ASSERT_TRUE(tree.Insert(i, i).ok());
  }
  auto cursor = tree.NewCursor();
  cursor.set_prefetch(true);
  ASSERT_TRUE(cursor.SeekGE(0).ok());
  pool.ResetStats();
  for (int i = 0; i < 2000 && cursor.Valid(); ++i) {
    ASSERT_TRUE(cursor.Next().ok());
  }
  IoStats st = pool.stats();
  EXPECT_GT(st.prefetch_reads, 0u);
  // After the first crossing (SeekGE itself does not prefetch), every leaf
  // crossing found its leaf already staged by the previous crossing's
  // prefetch: all those cursor fetches were hits.
  EXPECT_GE(st.cache_hits + 1, st.logical_fetches);
  EXPECT_GT(st.cache_hits, 0u);
}

TEST(ObjectBTree, RecordRoundtripPreservesAllFields) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{16});
  ObjectBTree tree(&pool);
  ObjectRecord rec;
  rec.x = 123.25;
  rec.y = -7.5;
  rec.vx = 0.125;
  rec.vy = -2.75;
  rec.tu = 9876.5432;
  rec.pntp = 0xCAFE;
  ASSERT_TRUE(tree.Insert({1, 2}, rec).ok());
  auto v = tree.Lookup({1, 2});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->x, rec.x);
  EXPECT_EQ(v->y, rec.y);
  EXPECT_EQ(v->vx, rec.vx);
  EXPECT_EQ(v->vy, rec.vy);
  EXPECT_EQ(v->tu, rec.tu);
  EXPECT_EQ(v->pntp, rec.pntp);
}

}  // namespace
}  // namespace peb
