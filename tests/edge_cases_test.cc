// Edge cases across the stack: space-boundary coordinates, degenerate
// query parameters, extreme policies, and clock wrap-around — the places
// real systems break first.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "motion/uniform_generator.h"
#include "peb/peb_tree.h"
#include "policy/policy_generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace peb {
namespace {

/// A tiny fully-open world: everyone is everyone's friend, all day, all
/// space — queries reduce to plain spatial semantics.
struct OpenWorld {
  GeneratedPolicies gp;
  std::unique_ptr<PolicyEncoding> enc;
  InMemoryDiskManager disk;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<PebTree> tree;
  Dataset ds;

  explicit OpenWorld(std::vector<MovingObject> objects) {
    ds.objects = std::move(objects);
    size_t n = ds.objects.size();
    RoleId r = gp.roles.RegisterRole("friend");
    gp.friend_role = r;
    Lpp open = testing::OpenPolicy(r);
    for (UserId a = 0; a < n; ++a) {
      for (UserId b = 0; b < n; ++b) {
        if (a == b) continue;
        gp.store.Add(a, b, open);
        gp.roles.AssignRole(a, b, r);
      }
    }
    CompatibilityOptions compat;
    SvQuantizer quant(64.0, 26);
    enc = std::make_unique<PolicyEncoding>(
        PolicyEncoding::Build(gp.store, n, compat, {}, quant));
    pool = std::make_unique<BufferPool>(&disk, BufferPoolOptions{32});
    PebTreeOptions opt;
    opt.index.grid_bits = 8;
    tree = std::make_unique<PebTree>(pool.get(), opt, &gp.store, &gp.roles,
                                     enc.get());
    for (const auto& o : ds.objects) EXPECT_TRUE(tree->Insert(o).ok());
  }
};

TEST(EdgeCases, ObjectsOnSpaceBoundaries) {
  OpenWorld w({
      {0, {0, 0}, {0, 0}, 0},          // Origin corner.
      {1, {1000, 1000}, {0, 0}, 0},    // Far corner.
      {2, {0, 1000}, {0, 0}, 0},
      {3, {1000, 0}, {0, 0}, 0},
      {4, {500, 0}, {0, 0}, 0},        // Edge midpoints.
      {5, {0, 500}, {0, 0}, 0},
  });
  // Whole-space query sees everyone (minus the issuer).
  auto got = w.tree->RangeQuery(0, Rect::Space(1000), 30.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1, 2, 3, 4, 5}));
  // Corner-pinned window catches the corner object only.
  got = w.tree->RangeQuery(0, {{999, 999}, {1000, 1000}}, 30.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1}));
}

TEST(EdgeCases, ObjectsDriftingOutOfTheSpace) {
  // An object whose extrapolated position leaves the domain is clamped to
  // border cells in the index but refined against its true position. Note
  // Definition 2: the user must also be inside their policy's locr — a
  // policy covering only the space never discloses an out-of-domain
  // position, so this world's policies cover a larger region.
  Dataset ds;
  ds.objects = {
      {0, {500, 500}, {0, 0}, 0},
      {1, {990, 990}, {3, 3}, 0},  // At t=30: (1080, 1080), outside.
  };
  GeneratedPolicies gp;
  RoleId r = gp.roles.RegisterRole("friend");
  Lpp wide = testing::OpenPolicy(r, /*space_side=*/4000.0);
  wide.locr.lo = {-1000, -1000};
  gp.store.Add(1, 0, wide);
  gp.roles.AssignRole(1, 0, r);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, 2, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{16});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  // Query window hanging past the border catches it.
  auto got = tree.RangeQuery(0, {{1000, 1000}, {1200, 1200}}, 30.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1}));
  // In-domain window at the old position does not.
  got = tree.RangeQuery(0, {{950, 950}, {999, 999}}, 30.0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  // And the answer agrees with the oracle either way.
  auto want = testing::BruteForcePrq(ds, gp.store, gp.roles, 0,
                                     {{1000, 1000}, {1200, 1200}}, 30.0);
  EXPECT_EQ(want, (std::vector<UserId>{1}));
}

TEST(EdgeCases, DegenerateQueryParameters) {
  OpenWorld w({
      {0, {500, 500}, {0, 0}, 0},
      {1, {510, 500}, {0, 0}, 0},
  });
  // Inverted rectangle: uniformly rejected (see privacy_index.h's
  // validation contract, held identically by every index).
  auto got = w.tree->RangeQuery(0, {{600, 600}, {400, 400}}, 30.0);
  EXPECT_TRUE(got.status().IsInvalidArgument());
  // Point rectangle exactly on the friend.
  got = w.tree->RangeQuery(0, {{510, 500}, {510, 500}}, 30.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1}));
  // k = 0: uniformly rejected.
  auto knn = w.tree->KnnQuery(0, {500, 500}, 0, 30.0);
  EXPECT_TRUE(knn.status().IsInvalidArgument());
  // Unknown issuer: uniformly NotFound.
  EXPECT_TRUE(
      w.tree->RangeQuery(999, {{400, 400}, {600, 600}}, 30.0).status()
          .IsNotFound());
  // k far beyond the population.
  knn = w.tree->KnnQuery(0, {500, 500}, 1000, 30.0);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->size(), 1u);
  // Query location outside the space.
  knn = w.tree->KnnQuery(0, {-200, 1500}, 1, 30.0);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->size(), 1u);
  EXPECT_EQ((*knn)[0].uid, 1u);
}

TEST(EdgeCases, ZeroAreaAndZeroDurationPolicies) {
  Dataset ds;
  ds.objects = {
      {0, {500, 500}, {0, 0}, 0},
      {1, {510, 500}, {0, 0}, 0},
      {2, {490, 500}, {0, 0}, 0},
  };
  GeneratedPolicies gp;
  RoleId r = gp.roles.RegisterRole("friend");
  // User 1: zero-area region (a point). Visible only exactly there.
  Lpp point_policy{r, {{510, 500}, {510, 500}}, TimeOfDayInterval::AllDay()};
  gp.store.Add(1, 0, point_policy);
  gp.roles.AssignRole(1, 0, r);
  // User 2: zero-duration instant.
  Lpp instant{r, Rect::Space(1000), {30.0, 30.0}};
  gp.store.Add(2, 0, instant);
  gp.roles.AssignRole(2, 0, r);

  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, 3, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{16});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  // t=30: user 1 sits exactly on their point region; user 2's instant
  // matches exactly.
  auto got = tree.RangeQuery(0, Rect::Space(1000), 30.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1, 2}));
  // t=31: user 2's instant has passed.
  got = tree.RangeQuery(0, Rect::Space(1000), 31.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1}));
}

TEST(EdgeCases, MidnightWrappingPolicyAcrossDays) {
  Dataset ds;
  ds.objects = {
      {0, {500, 500}, {0, 0}, 1430.0},
      {1, {510, 500}, {0, 0}, 1430.0},
  };
  GeneratedPolicies gp;
  RoleId r = gp.roles.RegisterRole("friend");
  Lpp night{r, Rect::Space(1000), {1380.0, 60.0}};  // 23:00-01:00.
  gp.store.Add(1, 0, night);
  gp.roles.AssignRole(1, 0, r);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, 2, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{16});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  // 23:50 on day 0 — inside the window.
  auto got = tree.RangeQuery(0, Rect::Space(1000), 1430.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1}));
  // 00:30 on day 1 (absolute t = 1470) — still inside after the wrap.
  ASSERT_TRUE(tree.Update({1, {510, 500}, {0, 0}, 1470.0}).ok());
  got = tree.RangeQuery(0, Rect::Space(1000), 1470.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1}));
  // 02:00 on day 1 (t = 1560) — window closed.
  ASSERT_TRUE(tree.Update({1, {510, 500}, {0, 0}, 1560.0}).ok());
  got = tree.RangeQuery(0, Rect::Space(1000), 1560.0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(EdgeCases, SingleUserWorld) {
  OpenWorld w({{0, {500, 500}, {0, 0}, 0}});
  auto got = w.tree->RangeQuery(0, Rect::Space(1000), 30.0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  auto knn = w.tree->KnnQuery(0, {500, 500}, 3, 30.0);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn->empty());
}

TEST(EdgeCases, QueriesAgainstEmptyIndex) {
  Dataset empty;
  GeneratedPolicies gp;
  RoleId r = gp.roles.RegisterRole("friend");
  Lpp open = testing::OpenPolicy(r);
  gp.store.Add(1, 0, open);
  gp.roles.AssignRole(1, 0, r);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, 2, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{16});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);

  auto got = tree.RangeQuery(0, Rect::Space(1000), 0.0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  auto knn = tree.KnnQuery(0, {1, 1}, 5, 0.0);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn->empty());
}

TEST(EdgeCases, IdenticalPositionsManyUsers) {
  // 30 users stacked on the same point with identical keys except uid.
  std::vector<MovingObject> objs;
  for (UserId i = 0; i < 30; ++i) {
    objs.push_back({i, {500, 500}, {0, 0}, 0});
  }
  OpenWorld w(std::move(objs));
  auto got = w.tree->RangeQuery(0, {{499, 499}, {501, 501}}, 10.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 29u);
  auto knn = w.tree->KnnQuery(0, {500, 500}, 10, 10.0);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->size(), 10u);
  for (const auto& n : *knn) EXPECT_DOUBLE_EQ(n.distance, 0.0);
}

}  // namespace
}  // namespace peb
