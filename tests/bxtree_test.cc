#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bxtree/bx_key.h"
#include "bxtree/bxtree.h"
#include "bxtree/filtering_index.h"
#include "common/rng.h"
#include "motion/uniform_generator.h"
#include "motion/update_stream.h"
#include "policy/policy_generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace peb {
namespace {

// ---------------------------------------------------------------------------
// Time partition layout (Eq. 2 semantics)
// ---------------------------------------------------------------------------

TEST(TimePartitionLayout, LabelsAreTwoPhasesAhead) {
  TimePartitionLayout l;  // delta_t_mu = 120, n = 2 -> phase = 60.
  EXPECT_DOUBLE_EQ(l.PhaseLength(), 60.0);
  EXPECT_EQ(l.NumPartitions(), 3u);
  // Updates in [0, 60) are indexed as of t = 120 (the paper's example:
  // objects updated between 0 and delta/2 go to tlab = delta).
  EXPECT_EQ(l.LabelIndexFor(0.0), 2);
  EXPECT_EQ(l.LabelIndexFor(59.9), 2);
  EXPECT_EQ(l.LabelIndexFor(60.0), 3);
  EXPECT_DOUBLE_EQ(l.LabelTimestamp(2), 120.0);
  // Lead time is always in (phase, 2*phase].
  for (double tu : {0.0, 10.0, 59.0, 60.0, 100.0, 119.0, 1234.5}) {
    double lead = l.LabelTimestamp(l.LabelIndexFor(tu)) - tu;
    EXPECT_GT(lead, l.PhaseLength() - 1e9 * 0);  // > 60 - eps
    EXPECT_GT(lead, 60.0 - 1e-9);
    EXPECT_LE(lead, 120.0 + 1e-9);
  }
}

TEST(TimePartitionLayout, PartitionsCycleModNPlusOne) {
  TimePartitionLayout l;
  EXPECT_EQ(l.PartitionOf(2), 1u);  // (2-1) mod 3.
  EXPECT_EQ(l.PartitionOf(3), 2u);
  EXPECT_EQ(l.PartitionOf(4), 0u);
  EXPECT_EQ(l.PartitionOf(5), 1u);
  // Consecutive live labels always land in distinct partitions.
  for (int64_t base = 2; base < 30; ++base) {
    std::set<uint32_t> parts;
    for (int64_t label = base; label < base + 3; ++label) {
      parts.insert(l.PartitionOf(label));
    }
    EXPECT_EQ(parts.size(), 3u);
  }
}

TEST(BxKeyLayout, PackAndUnpack) {
  BxKeyLayout l;  // 4 tid bits, 10 grid bits.
  uint64_t key = l.MakeKey(2, 12345);
  EXPECT_EQ(l.PartitionOfKey(key), 2u);
  EXPECT_EQ(l.ZvOfKey(key), 12345u);
  // Partition dominates the ordering.
  EXPECT_LT(l.MakeKey(1, 0xFFFFF), l.MakeKey(2, 0));
}

// ---------------------------------------------------------------------------
// BxTree basic operations
// ---------------------------------------------------------------------------

class BxTreeTest : public ::testing::Test {
 protected:
  BxTreeTest() : pool_(&disk_, BufferPoolOptions{64}) {
    options_.space_side = 1000.0;
    options_.grid_bits = 8;
    options_.max_speed = 3.0;
    tree_ = std::make_unique<BxTree>(&pool_, options_);
  }

  MovingObject Make(UserId id, double x, double y, double vx, double vy,
                    Timestamp tu) {
    return {id, {x, y}, {vx, vy}, tu};
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  MovingIndexOptions options_;
  std::unique_ptr<BxTree> tree_;
};

TEST_F(BxTreeTest, InsertDeleteUpdateLifecycle) {
  ASSERT_TRUE(tree_->Insert(Make(1, 100, 100, 1, 0, 5)).ok());
  EXPECT_EQ(tree_->size(), 1u);
  EXPECT_TRUE(tree_->Insert(Make(1, 200, 200, 0, 0, 5)).IsAlreadyExists());

  auto got = tree_->GetObject(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->pos, (Point{100, 100}));

  ASSERT_TRUE(tree_->Update(Make(1, 300, 300, 0, 1, 30)).ok());
  got = tree_->GetObject(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->pos, (Point{300, 300}));
  EXPECT_EQ(tree_->size(), 1u);

  ASSERT_TRUE(tree_->Delete(1).ok());
  EXPECT_EQ(tree_->size(), 0u);
  EXPECT_TRUE(tree_->Delete(1).IsNotFound());
  EXPECT_TRUE(tree_->GetObject(1).status().IsNotFound());
}

TEST_F(BxTreeTest, UpdateActsAsInsertWhenAbsent) {
  ASSERT_TRUE(tree_->Update(Make(9, 10, 10, 0, 0, 0)).ok());
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BxTreeTest, RangeQueryFindsMovingObjects) {
  // Object A is inside the range at tq only because of its motion.
  ASSERT_TRUE(tree_->Insert(Make(1, 90, 100, 2, 0, 0)).ok());   // ->150,100
  // Object B starts inside but leaves by tq.
  ASSERT_TRUE(tree_->Insert(Make(2, 110, 100, -3, 0, 0)).ok()); // ->20,100
  // Object C is static inside.
  ASSERT_TRUE(tree_->Insert(Make(3, 130, 130, 0, 0, 0)).ok());
  // Object D is static far away.
  ASSERT_TRUE(tree_->Insert(Make(4, 800, 800, 0, 0, 0)).ok());

  Rect range{{100, 80}, {200, 180}};
  auto res = tree_->RangeQuery(range, 30.0);
  ASSERT_TRUE(res.ok());
  std::vector<UserId> ids;
  for (const auto& c : *res) ids.push_back(c.uid);
  EXPECT_EQ(ids, (std::vector<UserId>{1, 3}));
}

TEST_F(BxTreeTest, KnnUnfilteredReturnsNearest) {
  for (UserId i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        tree_->Insert(Make(i, 100.0 + 10.0 * i, 500, 0, 0, 0)).ok());
  }
  auto res = tree_->KnnQuery({100, 500}, 3, 10.0);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 3u);
  EXPECT_EQ((*res)[0].uid, 0u);
  EXPECT_EQ((*res)[1].uid, 1u);
  EXPECT_EQ((*res)[2].uid, 2u);
  EXPECT_DOUBLE_EQ((*res)[0].distance, 0.0);
  EXPECT_DOUBLE_EQ((*res)[2].distance, 20.0);
}

TEST_F(BxTreeTest, DkEstimateIsSane) {
  for (UserId i = 0; i < 1000; ++i) {
    double x = (i % 32) * 31.0;
    double y = (i / 32) * 31.0;
    ASSERT_TRUE(tree_->Insert(Make(i, x, y, 0, 0, 0)).ok());
  }
  double d1 = tree_->EstimateKnnDistance(1);
  double d10 = tree_->EstimateKnnDistance(10);
  EXPECT_GT(d1, 0.0);
  EXPECT_LT(d1, d10);       // More neighbors -> larger estimate.
  EXPECT_LT(d10, 1000.0);   // Below the space side.
}

// ---------------------------------------------------------------------------
// Randomized differential test against brute force.
// ---------------------------------------------------------------------------

struct BxFuzzParams {
  uint64_t seed;
  size_t num_objects;
  double max_speed;
  uint32_t grid_bits;
};

class BxTreeFuzzTest : public ::testing::TestWithParam<BxFuzzParams> {};

TEST_P(BxTreeFuzzTest, RangeQueryMatchesBruteForce) {
  const BxFuzzParams p = GetParam();
  UniformGeneratorOptions gen;
  gen.num_objects = p.num_objects;
  gen.max_speed = p.max_speed;
  gen.stagger_window = 120.0;
  gen.seed = p.seed;
  Dataset ds = GenerateUniformDataset(gen);

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  MovingIndexOptions opt;
  opt.space_side = 1000.0;
  opt.grid_bits = p.grid_bits;
  opt.max_speed = p.max_speed;
  BxTree tree(&pool, opt);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rng rng(p.seed * 37);
  Timestamp tq = 120.0;
  for (int q = 0; q < 30; ++q) {
    Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    double side = rng.Uniform(20, 400);
    Rect range = Rect::CenteredSquare(c, side).ClampedTo(Rect::Space(1000));

    auto res = tree.RangeQuery(range, tq);
    ASSERT_TRUE(res.ok());
    std::vector<UserId> got;
    for (const auto& cand : *res) got.push_back(cand.uid);

    std::vector<UserId> want;
    for (const auto& o : ds.objects) {
      if (range.Contains(o.PositionAt(tq))) want.push_back(o.id);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "query " << q;
  }
}

TEST_P(BxTreeFuzzTest, KnnMatchesBruteForce) {
  const BxFuzzParams p = GetParam();
  UniformGeneratorOptions gen;
  gen.num_objects = p.num_objects;
  gen.max_speed = p.max_speed;
  gen.stagger_window = 120.0;
  gen.seed = p.seed + 1;
  Dataset ds = GenerateUniformDataset(gen);

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  MovingIndexOptions opt;
  opt.grid_bits = p.grid_bits;
  opt.max_speed = p.max_speed;
  BxTree tree(&pool, opt);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rng rng(p.seed * 41);
  Timestamp tq = 120.0;
  for (int q = 0; q < 20; ++q) {
    Point qloc{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    size_t k = 1 + rng.NextBelow(10);
    auto res = tree.KnnQuery(qloc, k, tq);
    ASSERT_TRUE(res.ok());

    // Brute force k nearest.
    std::vector<Neighbor> want;
    for (const auto& o : ds.objects) {
      want.push_back({o.id, o.PositionAt(tq).DistanceTo(qloc)});
    }
    std::sort(want.begin(), want.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.uid < b.uid;
              });
    want.resize(std::min(k, want.size()));

    ASSERT_EQ(res->size(), want.size()) << "query " << q;
    for (size_t i = 0; i < want.size(); ++i) {
      // Compare by distance (ties may order differently).
      EXPECT_NEAR((*res)[i].distance, want[i].distance, 1e-6)
          << "query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BxTreeFuzzTest,
    ::testing::Values(BxFuzzParams{1, 500, 3.0, 8},
                      BxFuzzParams{2, 2000, 3.0, 10},
                      BxFuzzParams{3, 1000, 0.0, 8},   // Static objects.
                      BxFuzzParams{4, 1000, 6.0, 6},   // Fast + coarse grid.
                      BxFuzzParams{5, 100, 1.0, 10})); // Sparse.

TEST(BxTreeChurn, UpdatesPreserveQueryCorrectness) {
  UniformGeneratorOptions gen;
  gen.num_objects = 800;
  gen.stagger_window = 120.0;
  gen.seed = 71;
  Dataset ds = GenerateUniformDataset(gen);

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  MovingIndexOptions opt;
  opt.grid_bits = 8;
  BxTree tree(&pool, opt);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  UniformUpdateStreamOptions us;
  us.seed = 72;
  UniformUpdateStream stream(ds, us);
  Rng rng(73);
  Timestamp now = 120.0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 400; ++i) {
      UpdateEvent ev = stream.Next();
      ASSERT_TRUE(tree.Update(ev.state).ok());
      ds.objects[ev.state.id] = ev.state;
      now = std::max(now, ev.t);
    }
    Rect range = Rect::CenteredSquare(
        {rng.Uniform(100, 900), rng.Uniform(100, 900)}, 250);
    auto res = tree.RangeQuery(range, now);
    ASSERT_TRUE(res.ok());
    std::vector<UserId> got;
    for (const auto& c : *res) got.push_back(c.uid);
    std::vector<UserId> want;
    for (const auto& o : ds.objects) {
      if (range.Contains(o.PositionAt(now))) want.push_back(o.id);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// FilteringIndex (the Section 4 baseline) against brute force.
// ---------------------------------------------------------------------------

class FilteringIndexTest : public ::testing::Test {
 protected:
  void Build(size_t users, size_t policies, uint64_t seed) {
    UniformGeneratorOptions gen;
    gen.num_objects = users;
    gen.stagger_window = 120.0;
    gen.seed = seed;
    ds_ = GenerateUniformDataset(gen);

    PolicyGeneratorOptions pg;
    pg.num_users = users;
    pg.policies_per_user = policies;
    pg.grouping_factor = 0.6;
    pg.seed = seed + 7;
    gen_ = GeneratePolicies(pg);

    pool_ = std::make_unique<BufferPool>(&disk_, BufferPoolOptions{64});
    MovingIndexOptions opt;
    opt.grid_bits = 8;
    index_ = std::make_unique<FilteringIndex>(pool_.get(), opt, &gen_.store,
                                              &gen_.roles);
    for (const auto& o : ds_.objects) ASSERT_TRUE(index_->Insert(o).ok());
  }

  Dataset ds_;
  GeneratedPolicies gen_;
  InMemoryDiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<FilteringIndex> index_;
};

TEST_F(FilteringIndexTest, PrqMatchesBruteForce) {
  Build(600, 12, 5);
  Rng rng(55);
  Timestamp tq = 120.0;
  for (int q = 0; q < 25; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(600));
    Rect range = Rect::CenteredSquare(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, rng.Uniform(50, 500));
    auto got = index_->RangeQuery(issuer, range, tq);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePrq(ds_, gen_.store, gen_.roles, issuer,
                                       range, tq);
    EXPECT_EQ(*got, want) << "query " << q;
  }
}

TEST_F(FilteringIndexTest, PknnMatchesBruteForce) {
  Build(600, 12, 6);
  Rng rng(56);
  Timestamp tq = 120.0;
  for (int q = 0; q < 25; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(600));
    Point qloc = ds_.objects[issuer].PositionAt(tq);
    size_t k = 1 + rng.NextBelow(8);
    auto got = index_->KnnQuery(issuer, qloc, k, tq);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePknn(ds_, gen_.store, gen_.roles, issuer,
                                        qloc, k, tq);
    ASSERT_EQ(got->size(), want.size()) << "query " << q;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR((*got)[i].distance, want[i].distance, 1e-6)
          << "query " << q << " rank " << i;
    }
  }
}

TEST_F(FilteringIndexTest, IssuerNeverInOwnResult) {
  Build(200, 30, 7);
  // Give user 0 an open policy toward itself to try to trick the query.
  Lpp open = testing::OpenPolicy(gen_.friend_role);
  gen_.store.Add(0, 0, open);
  gen_.roles.AssignRole(0, 0, gen_.friend_role);
  auto got = index_->RangeQuery(0, Rect::Space(1000), 120.0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(std::find(got->begin(), got->end(), 0u) == got->end());
}

TEST_F(FilteringIndexTest, NoPoliciesMeansEmptyResults) {
  // Fresh store with zero policies: every query comes back empty.
  UniformGeneratorOptions gen;
  gen.num_objects = 100;
  gen.seed = 3;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyStore store;
  RoleRegistry roles;
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{32});
  MovingIndexOptions opt;
  opt.grid_bits = 8;
  FilteringIndex index(&pool, opt, &store, &roles);
  for (const auto& o : ds.objects) ASSERT_TRUE(index.Insert(o).ok());

  auto prq = index.RangeQuery(5, Rect::Space(1000), 0.0);
  ASSERT_TRUE(prq.ok());
  EXPECT_TRUE(prq->empty());
  auto knn = index.KnnQuery(5, {500, 500}, 3, 0.0);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn->empty());
}

}  // namespace
}  // namespace peb
