// Tests for the continuous privacy-aware range query monitor (the paper's
// Section-8 extension) — seeded results, update-driven transitions,
// time-driven transitions, and equivalence with repeated one-shot PRQs.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "motion/uniform_generator.h"
#include "motion/update_stream.h"
#include "peb/continuous.h"
#include "peb/peb_tree.h"
#include "policy/policy_generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace peb {
namespace {

/// Hand-built 3-user world: issuer 0; friend 1 (always visible); friend 2
/// (morning-only policy window).
struct TinyWorld {
  GeneratedPolicies gp;
  std::unique_ptr<PolicyEncoding> enc;
  InMemoryDiskManager disk;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<PebTree> tree;
  std::unique_ptr<ContinuousQueryMonitor> monitor;

  TinyWorld() {
    RoleId r = gp.roles.RegisterRole("friend");
    gp.friend_role = r;
    Lpp always = testing::OpenPolicy(r);
    Lpp morning = always;
    morning.tint = {0, 60};
    gp.store.Add(1, 0, always);
    gp.roles.AssignRole(1, 0, r);
    gp.store.Add(2, 0, morning);
    gp.roles.AssignRole(2, 0, r);

    CompatibilityOptions compat;
    SvQuantizer quant(64.0, 26);
    enc = std::make_unique<PolicyEncoding>(
        PolicyEncoding::Build(gp.store, 3, compat, {}, quant));
    pool = std::make_unique<BufferPool>(&disk, BufferPoolOptions{16});
    PebTreeOptions opt;
    opt.index.grid_bits = 8;
    tree = std::make_unique<PebTree>(pool.get(), opt, &gp.store, &gp.roles,
                                     enc.get());
    monitor = std::make_unique<ContinuousQueryMonitor>(
        tree.get(), &gp.store, &gp.roles, enc.get());
  }
};

TEST(ContinuousQuery, SeedsFromIndexWithoutEvents) {
  TinyWorld w;
  ASSERT_TRUE(w.tree->Insert({0, {500, 500}, {0, 0}, 0}).ok());
  ASSERT_TRUE(w.tree->Insert({1, {510, 500}, {0, 0}, 0}).ok());
  ASSERT_TRUE(w.tree->Insert({2, {490, 500}, {0, 0}, 0}).ok());

  Rect range = Rect::CenteredSquare({500, 500}, 100);
  auto id = w.monitor->Register(0, range, 30.0);  // Morning.
  ASSERT_TRUE(id.ok());
  auto res = w.monitor->ResultOf(*id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, (std::vector<UserId>{1, 2}));
  EXPECT_TRUE(w.monitor->TakeEvents().empty());  // Seeding is silent.
}

TEST(ContinuousQuery, UpdateMovesFriendInAndOut) {
  TinyWorld w;
  ASSERT_TRUE(w.tree->Insert({0, {500, 500}, {0, 0}, 0}).ok());
  ASSERT_TRUE(w.tree->Insert({1, {900, 900}, {0, 0}, 0}).ok());  // Far away.
  ASSERT_TRUE(w.tree->Insert({2, {490, 500}, {0, 0}, 0}).ok());

  Rect range = Rect::CenteredSquare({500, 500}, 100);
  auto id = w.monitor->Register(0, range, 30.0);
  ASSERT_TRUE(id.ok());
  auto res = w.monitor->ResultOf(*id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, (std::vector<UserId>{2}));

  // Friend 1 moves into the range.
  MovingObject moved{1, {520, 510}, {0, 0}, 40.0};
  ASSERT_TRUE(w.tree->Update(moved).ok());
  ASSERT_TRUE(w.monitor->OnUpdate(moved, 40.0).ok());
  auto events = w.monitor->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], (ContinuousQueryEvent{*id, 1, true, 40.0}));
  res = w.monitor->ResultOf(*id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, (std::vector<UserId>{1, 2}));

  // Friend 1 moves out again.
  MovingObject gone{1, {50, 50}, {0, 0}, 45.0};
  ASSERT_TRUE(w.tree->Update(gone).ok());
  ASSERT_TRUE(w.monitor->OnUpdate(gone, 45.0).ok());
  events = w.monitor->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].entered);
  EXPECT_EQ(events[0].user, 1u);
}

TEST(ContinuousQuery, AdvanceHandlesPolicyWindowsAndMotion) {
  TinyWorld w;
  ASSERT_TRUE(w.tree->Insert({0, {500, 500}, {0, 0}, 0}).ok());
  ASSERT_TRUE(w.tree->Insert({1, {510, 500}, {0, 0}, 0}).ok());
  // Friend 2 inside the range, morning policy, drifting east slowly.
  ASSERT_TRUE(w.tree->Insert({2, {490, 500}, {1.0, 0}, 0}).ok());

  Rect range = Rect::CenteredSquare({500, 500}, 100);
  auto id = w.monitor->Register(0, range, 30.0);
  ASSERT_TRUE(id.ok());
  auto res0 = w.monitor->ResultOf(*id);
  ASSERT_TRUE(res0.ok());
  EXPECT_EQ(*res0, (std::vector<UserId>{1, 2}));

  // At t=90 user 2's morning window [0, 60] has closed: they drop out with
  // no index update at all.
  ASSERT_TRUE(w.monitor->Advance(90.0).ok());
  auto events = w.monitor->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].user, 2u);
  EXPECT_FALSE(events[0].entered);
  auto res = w.monitor->ResultOf(*id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, (std::vector<UserId>{1}));
}

TEST(ContinuousQuery, UnregisterStopsTracking) {
  TinyWorld w;
  ASSERT_TRUE(w.tree->Insert({0, {500, 500}, {0, 0}, 0}).ok());
  ASSERT_TRUE(w.tree->Insert({1, {510, 500}, {0, 0}, 0}).ok());
  ASSERT_TRUE(w.tree->Insert({2, {490, 500}, {0, 0}, 0}).ok());
  auto id = w.monitor->Register(0, Rect::CenteredSquare({500, 500}, 100),
                                30.0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(w.monitor->num_queries(), 1u);
  ASSERT_TRUE(w.monitor->Unregister(*id).ok());
  EXPECT_EQ(w.monitor->num_queries(), 0u);
  EXPECT_TRUE(w.monitor->Unregister(*id).IsNotFound());
  EXPECT_TRUE(w.monitor->ResultOf(*id).status().IsNotFound());

  MovingObject moved{1, {50, 50}, {0, 0}, 40.0};
  ASSERT_TRUE(w.tree->Update(moved).ok());
  ASSERT_TRUE(w.monitor->OnUpdate(moved, 40.0).ok());
  EXPECT_TRUE(w.monitor->TakeEvents().empty());
}

TEST(ContinuousQuery, MatchesRepeatedOneShotQueriesUnderChurn) {
  // Property: after any prefix of updates + Advance(now), the monitor's
  // answer equals a fresh PRQ at `now`.
  const size_t users = 300;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 120.0;
  gen.seed = 5;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 10;
  pg.grouping_factor = 0.6;
  pg.seed = 6;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  ContinuousQueryMonitor monitor(&tree, &gp.store, &gp.roles, &enc);
  Rng rng(7);
  std::vector<ContinuousQueryId> ids;
  std::vector<std::pair<UserId, Rect>> specs;
  for (int i = 0; i < 5; ++i) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(users));
    Rect range = Rect::CenteredSquare(
        {rng.Uniform(100, 900), rng.Uniform(100, 900)}, 350);
    auto id = monitor.Register(issuer, range, 120.0);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    specs.push_back({issuer, range});
  }

  UniformUpdateStreamOptions us;
  us.seed = 8;
  UniformUpdateStream stream(ds, us);
  Timestamp now = 120.0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 100; ++i) {
      UpdateEvent ev = stream.Next();
      ASSERT_TRUE(tree.Update(ev.state).ok());
      ASSERT_TRUE(monitor.OnUpdate(ev.state, std::max(now, ev.t)).ok());
      ds.objects[ev.state.id] = ev.state;
      now = std::max(now, ev.t);
    }
    ASSERT_TRUE(monitor.Advance(now).ok());
    for (size_t i = 0; i < ids.size(); ++i) {
      auto live = monitor.ResultOf(ids[i]);
      ASSERT_TRUE(live.ok());
      auto fresh = tree.RangeQuery(specs[i].first, specs[i].second, now);
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ(*live, *fresh) << "round " << round << " query " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// BFS sequence-value strategy (Section 8 "new encoding techniques").
// ---------------------------------------------------------------------------

TEST(BfsEncoding, AssignsEveryoneOneAnchorPerComponent) {
  // Two chains: 0-1-2-3 and 4-5.
  std::vector<std::vector<UserId>> groups(7);
  auto link = [&](UserId a, UserId b) {
    groups[a].push_back(b);
    groups[b].push_back(a);
  };
  link(0, 1);
  link(1, 2);
  link(2, 3);
  link(4, 5);
  // User 6 isolated.
  auto out = AssignSequenceValuesBfsFromGraph(
      7, groups, [](UserId, UserId) { return 0.5; }, {});
  for (double sv : out.sv) EXPECT_GE(sv, 2.0);
  EXPECT_EQ(out.num_anchors, 3u);  // Two components + the isolated user.
  // Chain stays tight: consecutive chain members differ by (1 - 0.5).
  EXPECT_NEAR(std::abs(out.sv[1] - out.sv[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(out.sv[2] - out.sv[1]), 0.5, 1e-12);
}

TEST(BfsEncoding, KeepsTransitiveChainsCloserThanGroupOrder) {
  // Path graph 0-1-2-...-9: Figure 5 assigns the anchor's direct
  // neighbors, then jumps δ for the next unassigned user, so far ends of
  // the chain land δ apart repeatedly. BFS keeps the whole chain within
  // sum of (1-C) offsets.
  const size_t n = 10;
  std::vector<std::vector<UserId>> groups(n);
  for (UserId i = 0; i + 1 < n; ++i) {
    groups[i].push_back(i + 1);
    groups[i + 1].push_back(i);
  }
  auto compat = [](UserId, UserId) { return 0.9; };
  auto fig5 = AssignSequenceValuesFromGraph(n, groups, compat, {});
  auto bfs = AssignSequenceValuesBfsFromGraph(n, groups, compat, {});

  auto span = [&](const SequenceAssignment& a) {
    double lo = 1e18, hi = -1e18;
    for (double v : a.sv) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  };
  EXPECT_LT(span(bfs), span(fig5));
  EXPECT_EQ(bfs.num_anchors, 1u);
  EXPECT_GT(fig5.num_anchors, 1u);
}

TEST(BfsEncoding, QueriesStayCorrectUnderBfsStrategy) {
  const size_t users = 400;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 120.0;
  gen.seed = 21;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 8;
  pg.grouping_factor = 0.7;
  pg.seed = 22;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant,
                                   SequenceStrategy::kBfsTraversal);

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rng rng(23);
  for (int q = 0; q < 20; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(users));
    Rect range = Rect::CenteredSquare(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 400);
    auto got = tree.RangeQuery(issuer, range, 120.0);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePrq(ds, gp.store, gp.roles, issuer, range,
                                       120.0);
    EXPECT_EQ(*got, want);

    Point qloc = ds.objects[issuer].PositionAt(120.0);
    auto knn = tree.KnnQuery(issuer, qloc, 5, 120.0);
    ASSERT_TRUE(knn.ok());
    auto want_knn = testing::BruteForcePknn(ds, gp.store, gp.roles, issuer,
                                            qloc, 5, 120.0);
    ASSERT_EQ(knn->size(), want_knn.size());
    for (size_t i = 0; i < want_knn.size(); ++i) {
      EXPECT_NEAR((*knn)[i].distance, want_knn[i].distance, 1e-6);
    }
  }
}

}  // namespace
}  // namespace peb
