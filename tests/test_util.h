// Shared helpers for the test suite: brute-force reference implementations
// of the privacy-aware queries and small workload builders.
#pragma once

#include <algorithm>
#include <vector>

#include "bxtree/privacy_index.h"
#include "motion/moving_object.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "spatial/geometry.h"

namespace peb {
namespace testing {

/// Reference PRQ (Definition 2): linear scan over the dataset.
inline std::vector<UserId> BruteForcePrq(const Dataset& dataset,
                                         const PolicyStore& store,
                                         const RoleRegistry& roles,
                                         UserId issuer, const Rect& range,
                                         Timestamp tq,
                                         double time_domain = kDefaultTimeDomain) {
  std::vector<UserId> out;
  for (const MovingObject& o : dataset.objects) {
    if (o.id == issuer) continue;
    Point pos = o.PositionAt(tq);
    if (range.Contains(pos) &&
        store.Allows(o.id, issuer, pos, tq, roles, time_domain)) {
      out.push_back(o.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Reference PkNN (Definition 3): linear scan + sort by distance.
inline std::vector<Neighbor> BruteForcePknn(
    const Dataset& dataset, const PolicyStore& store,
    const RoleRegistry& roles, UserId issuer, const Point& qloc, size_t k,
    Timestamp tq, double time_domain = kDefaultTimeDomain) {
  std::vector<Neighbor> all;
  for (const MovingObject& o : dataset.objects) {
    if (o.id == issuer) continue;
    Point pos = o.PositionAt(tq);
    if (store.Allows(o.id, issuer, pos, tq, roles, time_domain)) {
      all.push_back({o.id, pos.DistanceTo(qloc)});
    }
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.uid < b.uid;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

/// An all-permitting policy: whole space, whole day.
inline Lpp OpenPolicy(RoleId role, double space_side = 1000.0,
                      double time_domain = kDefaultTimeDomain) {
  Lpp p;
  p.role = role;
  p.locr = Rect::Space(space_side);
  p.tint = TimeOfDayInterval::AllDay(time_domain);
  return p;
}

}  // namespace testing
}  // namespace peb
