// MovingObjectService tests: the request/response front-end over every
// PrivacyAwareIndex.
//
//  * Validation conformance: PebTree, FilteringIndex, and ShardedPebEngine
//    reject malformed requests with IDENTICAL status codes (the
//    privacy_index.h contract).
//  * Response-carried observability: counters and per-query IoStats deltas
//    arrive by value, exact — serially and under concurrent submission
//    against interleaved update batches.
//  * Async submission: Submit/SubmitBatch answers equal serial Execute.
//  * Engine-wide continuous queries: identical event streams on 1-shard
//    and 4-shard engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "eval/runner.h"
#include "eval/workload.h"
#include "service/query_request.h"
#include "service/service.h"

namespace peb {
namespace {

using engine::ShardedPebEngine;
using eval::MakeEngine;
using eval::MakePknnQueries;
using eval::MakePrqQueries;
using eval::QuerySetOptions;
using eval::Workload;
using eval::WorkloadParams;
using service::MovingObjectService;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResponse;
using service::ServiceOptions;

WorkloadParams SmallParams(uint64_t seed) {
  WorkloadParams p;
  p.num_users = 600;
  p.policies_per_user = 10;
  p.buffer_pages = 50;
  p.grid_bits = 8;
  p.seed = seed;
  return p;
}

// ---------------------------------------------------------------------------
// Uniform request-validation conformance across all three indexes
// ---------------------------------------------------------------------------

enum class IndexKind { kPebTree, kFiltering, kEngine };

class ConformanceTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  static void SetUpTestSuite() {
    world_ = new Workload(Workload::Build(SmallParams(31)));
    engine_ = MakeEngine(*world_, 4, 2).release();
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    delete world_;
    world_ = nullptr;
  }

  static PrivacyAwareIndex& index() {
    switch (GetParam()) {
      case IndexKind::kPebTree:
        return world_->peb();
      case IndexKind::kFiltering:
        return world_->spatial();
      case IndexKind::kEngine:
        return *engine_;
    }
    return world_->peb();
  }

  static Workload* world_;
  static ShardedPebEngine* engine_;
};

Workload* ConformanceTest::world_ = nullptr;
ShardedPebEngine* ConformanceTest::engine_ = nullptr;

TEST_P(ConformanceTest, InvertedRectIsInvalidArgument) {
  auto r = index().RangeQuery(0, {{600, 600}, {400, 400}}, world_->now());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

TEST_P(ConformanceTest, HalfInvertedRectIsInvalidArgument) {
  auto r = index().RangeQuery(0, {{100, 600}, {400, 400}}, world_->now());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

TEST_P(ConformanceTest, KZeroIsInvalidArgument) {
  auto r = index().KnnQuery(0, {500, 500}, 0, world_->now());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

TEST_P(ConformanceTest, UnknownIssuerIsNotFound) {
  UserId unknown = static_cast<UserId>(world_->params().num_users) + 7;
  auto prq =
      index().RangeQuery(unknown, {{400, 400}, {600, 600}}, world_->now());
  EXPECT_TRUE(prq.status().IsNotFound()) << prq.status();
  auto knn = index().KnnQuery(unknown, {500, 500}, 5, world_->now());
  EXPECT_TRUE(knn.status().IsNotFound()) << knn.status();
}

TEST_P(ConformanceTest, ValidRequestsSucceed) {
  auto prq = index().RangeQuery(3, {{300, 300}, {700, 700}}, world_->now());
  EXPECT_TRUE(prq.ok()) << prq.status();
  auto knn = index().KnnQuery(3, {500, 500}, 5, world_->now());
  EXPECT_TRUE(knn.ok()) << knn.status();
  // A degenerate point rectangle is legal (not inverted).
  auto point = index().RangeQuery(3, {{500, 500}, {500, 500}}, world_->now());
  EXPECT_TRUE(point.ok()) << point.status();
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, ConformanceTest,
                         ::testing::Values(IndexKind::kPebTree,
                                           IndexKind::kFiltering,
                                           IndexKind::kEngine));

// ---------------------------------------------------------------------------
// Response-carried counters and I/O, serial
// ---------------------------------------------------------------------------

TEST(ServiceExecute, AnswersMatchIndexAndCarryExactStats) {
  Workload w = Workload::Build(SmallParams(32));
  MovingObjectService& svc = w.peb_service();

  QuerySetOptions q;
  q.count = 25;
  q.seed = 71;
  for (const auto& query : MakePrqQueries(w, q)) {
    uint64_t before = w.peb().aggregate_io().physical_reads;
    QueryResponse resp =
        svc.Execute(QueryRequest::Prq(query.issuer, query.range, query.tq));
    uint64_t after = w.peb().aggregate_io().physical_reads;
    ASSERT_TRUE(resp.ok()) << resp.status;

    auto direct = w.peb().RangeQuery(query.issuer, query.range, query.tq);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(resp.ids, *direct);

    // Counters arrive by value and are internally consistent on the
    // serial path.
    EXPECT_EQ(resp.counters.results, resp.ids.size());
    EXPECT_LE(resp.counters.results, resp.counters.candidates_examined);
    // The response's I/O delta equals the pool-level delta (serial).
    EXPECT_EQ(resp.io.physical_reads, after - before);
    EXPECT_EQ(resp.io.logical_fetches,
              resp.io.cache_hits + resp.io.physical_reads);
  }
}

TEST(ServiceExecute, CollectCountersOffLeavesStatsZero) {
  Workload w = Workload::Build(SmallParams(33));
  QueryRequest request = QueryRequest::Prq(2, {{300, 300}, {700, 700}},
                                           w.now());
  request.options.collect_counters = false;
  QueryResponse resp = w.peb_service().Execute(request);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.counters.candidates_examined, 0u);
  EXPECT_EQ(resp.counters.range_probes, 0u);
  EXPECT_EQ(resp.io.logical_fetches, 0u);
  EXPECT_EQ(resp.io.physical_reads, 0u);
}

TEST(ServiceExecute, ValidationErrorsSurfaceInResponses) {
  Workload w = Workload::Build(SmallParams(34));
  MovingObjectService& svc = w.peb_service();
  EXPECT_TRUE(svc.Execute(QueryRequest::Prq(1, {{600, 600}, {400, 400}},
                                            w.now()))
                  .status.IsInvalidArgument());
  EXPECT_TRUE(
      svc.Execute(QueryRequest::Pknn(1, {500, 500}, 0, w.now()))
          .status.IsInvalidArgument());
  EXPECT_TRUE(svc.Execute(QueryRequest::Prq(
                              static_cast<UserId>(w.params().num_users) + 1,
                              {{400, 400}, {600, 600}}, w.now()))
                  .status.IsNotFound());
}

// ---------------------------------------------------------------------------
// Async submission
// ---------------------------------------------------------------------------

TEST(ServiceSubmit, FuturesMatchSerialExecution) {
  Workload w = Workload::Build(SmallParams(35));
  auto engine = MakeEngine(w, 4, 2);
  ServiceOptions opts;
  opts.num_workers = 4;
  MovingObjectService svc(engine.get(), &w.store(), &w.roles(),
                          &w.encoding(), opts);

  QuerySetOptions q;
  q.count = 40;
  q.seed = 81;
  auto prq = MakePrqQueries(w, q);
  std::vector<QueryRequest> requests;
  for (const auto& query : prq) {
    requests.push_back(
        QueryRequest::Prq(query.issuer, query.range, query.tq));
  }
  auto futures = svc.SubmitBatch(std::move(requests));
  ASSERT_EQ(futures.size(), prq.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryResponse resp = futures[i].get();
    ASSERT_TRUE(resp.ok()) << resp.status;
    auto want = w.peb().RangeQuery(prq[i].issuer, prq[i].range, prq[i].tq);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(resp.ids, *want) << "query " << i;
    EXPECT_GE(resp.queue_ms, 0.0);
    EXPECT_GE(resp.exec_ms, 0.0);
  }
}

TEST(ServiceSubmit, InlineModeResolvesImmediately) {
  Workload w = Workload::Build(SmallParams(36));
  // Workload services run inline (num_workers = 0): the future is ready.
  auto future = w.peb_service().Submit(
      QueryRequest::Prq(5, {{300, 300}, {700, 700}}, w.now()));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(future.get().ok());
}

TEST(ServiceSubmit, ExpiredDeadlineIsShed) {
  Workload w = Workload::Build(SmallParams(37));
  auto engine = MakeEngine(w, 2, 2);
  ServiceOptions opts;
  opts.num_workers = 1;  // FIFO: later requests wait for the first.
  MovingObjectService svc(engine.get(), &w.store(), &w.roles(),
                          &w.encoding(), opts);

  // Occupy the single worker, then submit requests whose deadline (10 ns)
  // must already be exceeded by the time the worker reaches them.
  std::vector<std::future<QueryResponse>> futures;
  futures.push_back(svc.Submit(
      QueryRequest::Prq(1, {{0, 0}, {1000, 1000}}, w.now())));
  for (int i = 0; i < 10; ++i) {
    QueryRequest request =
        QueryRequest::Prq(2, {{300, 300}, {700, 700}}, w.now());
    request.options.deadline_ms = 1e-5;
    futures.push_back(svc.Submit(std::move(request)));
  }
  EXPECT_TRUE(futures[0].get().ok());
  for (size_t i = 1; i < futures.size(); ++i) {
    QueryResponse resp = futures[i].get();
    EXPECT_TRUE(resp.status.IsResourceExhausted()) << resp.status;
  }
}

// ---------------------------------------------------------------------------
// Concurrent submission against interleaved update batches
// ---------------------------------------------------------------------------

std::vector<Neighbor> Normalized(std::vector<Neighbor> v) {
  std::sort(v.begin(), v.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.uid < b.uid;
  });
  return v;
}

bool SameNeighbors(const std::vector<Neighbor>& a,
                   const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].uid != b[i].uid) return false;
    if (std::abs(a[i].distance - b[i].distance) > 1e-9) return false;
  }
  return true;
}

TEST(ServiceConcurrency, MixedSubmitAgainstUpdateSessionStaysExact) {
  const size_t kUpdates = 150;
  Workload w = Workload::Build(SmallParams(38));

  QuerySetOptions q;
  q.count = 30;
  q.window_side = 250.0;
  q.seed = 91;
  auto prq = MakePrqQueries(w, q);
  auto knn = MakePknnQueries(w, q);

  // Serial replays on the single tree: answers before (A) and after (B)
  // the update batch. The engine's state lock makes every query atomic
  // with respect to the whole batch, so each concurrent response must
  // equal one of the two.
  std::vector<std::vector<UserId>> prq_a, prq_b;
  std::vector<std::vector<Neighbor>> knn_a, knn_b;
  for (const auto& query : prq) {
    prq_a.push_back(
        *w.peb().RangeQuery(query.issuer, query.range, query.tq));
  }
  for (const auto& query : knn) {
    knn_a.push_back(Normalized(
        *w.peb().KnnQuery(query.issuer, query.qloc, query.k, query.tq)));
  }

  auto engine = MakeEngine(w, 4, 4);
  auto stream = eval::CloneUniformUpdateStream(w);
  ASSERT_NE(stream, nullptr);

  // Advance the reference tree to state B.
  ASSERT_TRUE(w.ApplyUpdates(kUpdates).ok());
  for (const auto& query : prq) {
    prq_b.push_back(
        *w.peb().RangeQuery(query.issuer, query.range, query.tq));
  }
  for (const auto& query : knn) {
    knn_b.push_back(Normalized(
        *w.peb().KnnQuery(query.issuer, query.qloc, query.k, query.tq)));
  }

  ServiceOptions opts;
  opts.num_workers = 4;
  MovingObjectService svc(engine.get(), &w.store(), &w.roles(),
                          &w.encoding(), opts);
  auto session = svc.OpenUpdateSession(stream.get(), /*batch_size=*/256);

  // Fire the mixed async wave, then apply the whole batch concurrently.
  std::vector<QueryRequest> wave;
  for (const auto& query : prq) {
    wave.push_back(QueryRequest::Prq(query.issuer, query.range, query.tq));
  }
  for (const auto& query : knn) {
    wave.push_back(
        QueryRequest::Pknn(query.issuer, query.qloc, query.k, query.tq));
  }
  auto futures = svc.SubmitBatch(std::move(wave));
  ASSERT_TRUE(session.Apply(kUpdates).ok());
  EXPECT_EQ(session.events_applied(), kUpdates);

  for (size_t i = 0; i < futures.size(); ++i) {
    QueryResponse resp = futures[i].get();
    ASSERT_TRUE(resp.ok()) << "request " << i << ": " << resp.status;

    // Internal consistency of the by-value counters.
    EXPECT_LE(resp.counters.results, resp.counters.candidates_examined)
        << "request " << i;
    EXPECT_GT(resp.counters.range_probes, 0u) << "request " << i;
    // Exact I/O attribution: every fetch this query performed was either
    // a hit or a read — torn or cross-query counts would break this.
    EXPECT_EQ(resp.io.logical_fetches,
              resp.io.cache_hits + resp.io.physical_reads)
        << "request " << i;

    if (i < prq.size()) {
      EXPECT_EQ(resp.counters.results, resp.ids.size());
      bool matches_a = resp.ids == prq_a[i];
      bool matches_b = resp.ids == prq_b[i];
      EXPECT_TRUE(matches_a || matches_b)
          << "PRQ " << i << " matches neither pre- nor post-batch replay";
    } else {
      size_t j = i - prq.size();
      EXPECT_EQ(resp.counters.results, resp.neighbors.size());
      std::vector<Neighbor> got = Normalized(resp.neighbors);
      bool matches_a = SameNeighbors(got, knn_a[j]);
      bool matches_b = SameNeighbors(got, knn_b[j]);
      EXPECT_TRUE(matches_a || matches_b)
          << "PkNN " << j << " matches neither pre- nor post-batch replay";
    }
  }

  // After the batch settles, every answer must equal the B replay.
  for (size_t i = 0; i < prq.size(); ++i) {
    QueryResponse resp = svc.Execute(
        QueryRequest::Prq(prq[i].issuer, prq[i].range, prq[i].tq));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.ids, prq_b[i]) << "post-batch PRQ " << i;
  }
}

TEST(ServiceConcurrency, ManualThreadsHammerExecute) {
  Workload w = Workload::Build(SmallParams(39));
  auto engine = MakeEngine(w, 4, 2);
  MovingObjectService svc(engine.get(), &w.store(), &w.roles(),
                          &w.encoding());

  QuerySetOptions q;
  q.count = 24;
  q.seed = 99;
  auto prq = MakePrqQueries(w, q);
  std::vector<std::vector<UserId>> want;
  for (const auto& query : prq) {
    want.push_back(
        *w.peb().RangeQuery(query.issuer, query.range, query.tq));
  }

  constexpr size_t kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < prq.size(); i += kThreads) {
        for (int rep = 0; rep < 3; ++rep) {
          QueryResponse resp = svc.Execute(
              QueryRequest::Prq(prq[i].issuer, prq[i].range, prq[i].tq));
          if (!resp.ok() || resp.ids != want[i] ||
              resp.io.logical_fetches !=
                  resp.io.cache_hits + resp.io.physical_reads) {
            failures[t]++;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

// ---------------------------------------------------------------------------
// Online policy lifecycle under concurrent traffic
// ---------------------------------------------------------------------------

TEST(ServicePolicyLifecycle, MutationsInterleavedWithQueriesAndUpdates) {
  const size_t kUpdates = 120;
  const size_t kMutations = 8;
  Workload w = Workload::Build(SmallParams(42));

  // The lifecycle instance owns its catalog (the workload's stays frozen
  // as the generator reference).
  PolicyCatalog catalog(w.store(), w.roles(), w.catalog()->options());
  engine::EngineOptions eopts;
  eopts.num_shards = 4;
  eopts.num_threads = 4;
  eopts.buffer_pages = w.params().buffer_pages;
  eopts.tree = eval::PebOptionsFor(w.params());
  ShardedPebEngine engine(eopts, &catalog.store(), &catalog.roles(),
                          catalog.snapshot());
  ASSERT_TRUE(engine.LoadDataset(w.dataset()).ok());

  ServiceOptions opts;
  opts.num_workers = 4;
  MovingObjectService svc(&engine, &catalog, opts);

  auto stream = eval::CloneUniformUpdateStream(w);
  ASSERT_NE(stream, nullptr);
  auto session = svc.OpenUpdateSession(stream.get(), /*batch_size=*/64);

  QuerySetOptions q;
  q.count = 40;
  q.seed = 17;
  auto prq = MakePrqQueries(w, q);
  std::vector<QueryRequest> wave;
  for (const auto& query : prq) {
    wave.push_back(QueryRequest::Prq(query.issuer, query.range, query.tq));
  }

  // Concurrently: an async query wave, an update session, and a stream of
  // policy mutations (each re-encoding + re-keying + publishing an epoch).
  auto futures = svc.SubmitBatch(std::move(wave));
  std::thread churn([&] {
    Lpp policy;
    policy.role = 0;  // The generator's "friend" role.
    policy.locr = Rect{{-1e9, -1e9}, {1e9, 1e9}};
    policy.tint = TimeOfDayInterval::AllDay();
    for (size_t i = 0; i < kMutations; ++i) {
      UserId owner = static_cast<UserId>((i * 37) % w.params().num_users);
      UserId peer = static_cast<UserId>((owner + 113 + i) %
                                        w.params().num_users);
      if (owner == peer) continue;
      QueryResponse resp =
          i % 2 == 0
              ? svc.Execute(QueryRequest::AddPolicy(owner, peer, policy,
                                                    w.now()))
              : svc.Execute(QueryRequest::RemovePolicy(owner, peer,
                                                       w.now()));
      ASSERT_TRUE(resp.ok()) << resp.status;
      EXPECT_GT(resp.epoch, 0u) << "mutation " << i;
    }
  });
  ASSERT_TRUE(session.Apply(kUpdates).ok());
  churn.join();

  uint64_t final_epoch = catalog.epoch();
  EXPECT_GT(final_epoch, 0u);

  // Every concurrent query succeeded, carried consistent by-value stats,
  // and named an epoch that existed while it ran.
  for (auto& future : futures) {
    QueryResponse resp = future.get();
    ASSERT_TRUE(resp.ok()) << resp.status;
    EXPECT_LE(resp.epoch, final_epoch);
    EXPECT_EQ(resp.io.logical_fetches,
              resp.io.cache_hits + resp.io.physical_reads);
  }

  // Settled state: answers are identical to a from-scratch rebuild of the
  // mutated corpus over the same motion state.
  PolicyCatalog rebuilt_catalog(catalog.store(), catalog.roles(),
                                catalog.options());
  ShardedPebEngine rebuilt(eopts, &rebuilt_catalog.store(),
                           &rebuilt_catalog.roles(),
                           rebuilt_catalog.snapshot());
  for (size_t u = 0; u < w.params().num_users; ++u) {
    auto obj = engine.GetObject(static_cast<UserId>(u));
    ASSERT_TRUE(obj.ok());
    ASSERT_TRUE(rebuilt.Insert(*obj).ok());
  }
  for (const auto& query : prq) {
    QueryResponse resp = svc.Execute(
        QueryRequest::Prq(query.issuer, query.range, query.tq));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.epoch, final_epoch);
    auto want = rebuilt.RangeQuery(query.issuer, query.range, query.tq);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(resp.ids, *want);
  }
}

// ---------------------------------------------------------------------------
// Engine-wide continuous queries
// ---------------------------------------------------------------------------

TEST(ServiceContinuous, IdenticalEventStreamsAcrossShardCounts) {
  const size_t kPhases = 3;
  const size_t kUpdatesPerPhase = 200;
  Workload w = Workload::Build(SmallParams(40));

  struct Instance {
    std::unique_ptr<ShardedPebEngine> engine;
    std::unique_ptr<MovingObjectService> svc;
    std::unique_ptr<UpdateStream> stream;
    ContinuousQueryId query = 0;
  };
  auto make_instance = [&](size_t shards) {
    Instance inst;
    inst.engine = MakeEngine(w, shards, 2);
    inst.svc = std::make_unique<MovingObjectService>(
        inst.engine.get(), &w.store(), &w.roles(), &w.encoding());
    inst.stream = eval::CloneUniformUpdateStream(w);
    return inst;
  };
  Instance single = make_instance(1);
  Instance sharded = make_instance(4);
  ASSERT_NE(single.stream, nullptr);
  ASSERT_NE(sharded.stream, nullptr);

  Rect district = Rect::CenteredSquare({500, 500}, 350.0);
  for (Instance* inst : {&single, &sharded}) {
    QueryResponse reg = inst->svc->Execute(
        QueryRequest::RegisterContinuous(7, district, w.now()));
    ASSERT_TRUE(reg.ok()) << reg.status;
    inst->query = reg.continuous_id;
  }
  // Identical initial answers.
  ASSERT_EQ(*single.svc->ContinuousResult(single.query),
            *sharded.svc->ContinuousResult(sharded.query));

  for (size_t phase = 0; phase < kPhases; ++phase) {
    std::vector<ContinuousQueryEvent> events_single, events_sharded;
    for (Instance* inst : {&single, &sharded}) {
      auto session = inst->svc->OpenUpdateSession(inst->stream.get(), 64);
      ASSERT_TRUE(session.Apply(kUpdatesPerPhase).ok());
      ASSERT_TRUE(
          inst->svc->AdvanceContinuous(session.last_event_time()).ok());
      auto events = inst->svc->TakeContinuousEvents();
      (inst == &single ? events_single : events_sharded) =
          std::move(events);
    }
    // The monitor is fed in stream order on both instances, so the event
    // streams are identical regardless of shard count.
    EXPECT_EQ(events_single, events_sharded) << "phase " << phase;
    EXPECT_EQ(*single.svc->ContinuousResult(single.query),
              *sharded.svc->ContinuousResult(sharded.query))
        << "phase " << phase;
  }

  // Cancellation through the request API.
  QueryResponse cancel = single.svc->Execute(
      QueryRequest::CancelContinuous(single.query));
  EXPECT_TRUE(cancel.ok()) << cancel.status;
  EXPECT_TRUE(single.svc->Execute(QueryRequest::CancelContinuous(
                            single.query))
                  .status.IsNotFound());
  EXPECT_EQ(single.svc->num_continuous_queries(), 0u);
}

TEST(ServiceContinuous, DisabledWithoutPolicyWorld) {
  Workload w = Workload::Build(SmallParams(41));
  MovingObjectService svc(&w.peb());  // No store/roles/encoding.
  QueryResponse reg = svc.Execute(QueryRequest::RegisterContinuous(
      1, Rect::CenteredSquare({500, 500}, 200.0), w.now()));
  EXPECT_EQ(reg.status.code(), StatusCode::kNotSupported);
  // Plain queries still work.
  EXPECT_TRUE(
      svc.Execute(QueryRequest::Prq(1, {{300, 300}, {700, 700}}, w.now()))
          .ok());
}

}  // namespace
}  // namespace peb
