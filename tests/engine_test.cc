// ShardedPebEngine tests: the engine must be an observationally equivalent
// drop-in for the single PEB-tree — PRQ and PkNN answers identical for any
// shard count, router policy, and thread count, with and without batched
// updates interleaved between query batches.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "engine/batch_applier.h"
#include "engine/shard_router.h"
#include "engine/sharded_engine.h"
#include "engine/thread_pool.h"
#include "eval/runner.h"
#include "eval/workload.h"

namespace peb {
namespace {

using engine::BatchApplierOptions;
using engine::BatchUpdateApplier;
using engine::RouterPolicy;
using engine::ShardedPebEngine;
using engine::ThreadPool;
using eval::MakeEngine;
using eval::MakePknnQueries;
using eval::MakePrqQueries;
using eval::QuerySetOptions;
using eval::Workload;
using eval::WorkloadParams;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunAllCompletesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 100; ++i) {
    tasks.push_back([&sum, i] { sum += i; });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  int calls = 0;
  pool.Submit([&calls] { calls++; });
  pool.RunAll({[&calls] { calls++; }, [&calls] { calls++; }});
  EXPECT_EQ(calls, 3);
}

// ---------------------------------------------------------------------------
// Routers
// ---------------------------------------------------------------------------

class EngineWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadParams p;
    p.num_users = 800;
    p.policies_per_user = 10;
    p.buffer_pages = 50;
    p.grid_bits = 8;
    p.seed = 7;
    world_ = new Workload(Workload::Build(p));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static Workload& world() { return *world_; }

  static Workload* world_;
};

Workload* EngineWorldTest::world_ = nullptr;

TEST_F(EngineWorldTest, RoutersAreStableAndInRange) {
  for (RouterPolicy policy : {RouterPolicy::kHashUser, RouterPolicy::kSvRange}) {
    auto router = engine::MakeRouter(policy, 7, &world().encoding());
    ASSERT_NE(router, nullptr);
    std::vector<size_t> population(7, 0);
    for (UserId u = 0; u < world().params().num_users; ++u) {
      size_t s = router->ShardOf(u);
      ASSERT_LT(s, 7u);
      EXPECT_EQ(s, router->ShardOf(u));  // Stable.
      population[s]++;
    }
    // No shard grossly overloaded (quantized SVs collide, so sv-range cuts
    // are only approximately even).
    for (size_t s = 0; s < 7; ++s) {
      EXPECT_LT(population[s], world().params().num_users / 2)
          << "policy " << static_cast<int>(policy) << " shard " << s;
    }
  }
}

TEST_F(EngineWorldTest, SvRangeRouterKeepsEqualSvsTogether) {
  engine::SvRangeRouter router(4, &world().encoding());
  const auto& enc = world().encoding();
  for (UserId a = 0; a < world().params().num_users; ++a) {
    for (UserId b = a + 1; b < world().params().num_users && b < a + 20; ++b) {
      if (enc.quantized_sv(a) == enc.quantized_sv(b)) {
        EXPECT_EQ(router.ShardOf(a), router.ShardOf(b));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Result equivalence vs the single PEB-tree
// ---------------------------------------------------------------------------

/// Sorts a kNN answer by (distance, uid): distances are continuous, so this
/// only normalizes the order of exact ties, which the merge may permute.
std::vector<Neighbor> Normalized(std::vector<Neighbor> v) {
  std::sort(v.begin(), v.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.uid < b.uid;
  });
  return v;
}

void ExpectSameAnswers(Workload& w, ShardedPebEngine& engine,
                       const std::vector<eval::PrqQuery>& prq,
                       const std::vector<eval::PknnQuery>& knn,
                       const char* context) {
  for (size_t i = 0; i < prq.size(); ++i) {
    auto want = w.peb().RangeQuery(prq[i].issuer, prq[i].range, prq[i].tq);
    auto got = engine.RangeQuery(prq[i].issuer, prq[i].range, prq[i].tq);
    ASSERT_TRUE(want.ok() && got.ok()) << context << " PRQ " << i;
    EXPECT_EQ(*got, *want) << context << " PRQ " << i;
  }
  for (size_t i = 0; i < knn.size(); ++i) {
    auto want =
        w.peb().KnnQuery(knn[i].issuer, knn[i].qloc, knn[i].k, knn[i].tq);
    auto got =
        engine.KnnQuery(knn[i].issuer, knn[i].qloc, knn[i].k, knn[i].tq);
    ASSERT_TRUE(want.ok() && got.ok()) << context << " PkNN " << i;
    std::vector<Neighbor> wantn = Normalized(*want);
    std::vector<Neighbor> gotn = Normalized(*got);
    ASSERT_EQ(gotn.size(), wantn.size()) << context << " PkNN " << i;
    for (size_t r = 0; r < wantn.size(); ++r) {
      EXPECT_EQ(gotn[r].uid, wantn[r].uid)
          << context << " PkNN " << i << " rank " << r;
      EXPECT_DOUBLE_EQ(gotn[r].distance, wantn[r].distance)
          << context << " PkNN " << i << " rank " << r;
    }
  }
}

struct EquivalenceParams {
  size_t shards;
  size_t threads;
  RouterPolicy policy;
};

class EngineEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParams> {};

TEST_P(EngineEquivalenceTest, MatchesSingleTree) {
  const auto p = GetParam();
  WorkloadParams wp;
  wp.num_users = 800;
  wp.policies_per_user = 10;
  wp.buffer_pages = 50;
  wp.grid_bits = 8;
  wp.seed = 11;
  Workload w = Workload::Build(wp);
  auto engine = MakeEngine(w, p.shards, p.threads, p.policy);
  ASSERT_EQ(engine->num_shards(), p.shards);
  ASSERT_EQ(engine->size(), w.peb().size());

  QuerySetOptions q;
  q.count = 30;
  q.window_side = 250.0;
  q.seed = 501;
  ExpectSameAnswers(w, *engine, MakePrqQueries(w, q), MakePknnQueries(w, q),
                    "static");
}

INSTANTIATE_TEST_SUITE_P(
    ShardCounts, EngineEquivalenceTest,
    ::testing::Values(
        EquivalenceParams{1, 0, RouterPolicy::kHashUser},
        EquivalenceParams{2, 2, RouterPolicy::kHashUser},
        EquivalenceParams{4, 4, RouterPolicy::kHashUser},
        EquivalenceParams{7, 3, RouterPolicy::kHashUser},
        EquivalenceParams{2, 2, RouterPolicy::kSvRange},
        EquivalenceParams{4, 4, RouterPolicy::kSvRange},
        EquivalenceParams{7, 3, RouterPolicy::kSvRange}));

// ---------------------------------------------------------------------------
// Equivalence with batched updates interleaved between query batches
// ---------------------------------------------------------------------------

class EngineUpdateTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EngineUpdateTest, MatchesSingleTreeAcrossUpdateBatches) {
  const size_t shards = GetParam();
  WorkloadParams wp;
  wp.num_users = 600;
  wp.policies_per_user = 10;
  wp.buffer_pages = 50;
  wp.grid_bits = 8;
  wp.seed = 23;
  Workload w = Workload::Build(wp);

  // Identical event sequences: the applier drains a deterministic clone of
  // the stream Workload::ApplyUpdates consumes.
  std::unique_ptr<UpdateStream> stream = eval::CloneUniformUpdateStream(w);
  ASSERT_NE(stream, nullptr);
  auto engine = MakeEngine(w, shards, 4);
  BatchApplierOptions bo;
  bo.batch_size = 64;
  BatchUpdateApplier applier(engine.get(), stream.get(), bo);

  QuerySetOptions q;
  q.count = 15;
  q.window_side = 250.0;
  const size_t kUpdatesPerPhase = 150;  // 25% of the users per phase.
  for (int phase = 0; phase < 3; ++phase) {
    q.seed = 900 + static_cast<uint64_t>(phase);
    ExpectSameAnswers(w, *engine, MakePrqQueries(w, q), MakePknnQueries(w, q),
                      "phase");
    ASSERT_TRUE(w.ApplyUpdates(kUpdatesPerPhase).ok());
    ASSERT_TRUE(applier.Apply(kUpdatesPerPhase).ok());
    ASSERT_EQ(engine->size(), w.peb().size());
  }
  EXPECT_EQ(applier.events_applied(), 3 * kUpdatesPerPhase);
  EXPECT_GT(applier.batches_applied(), 0u);
  EXPECT_GT(applier.last_event_time(), 0.0);
  // Final check after the last batch.
  q.seed = 999;
  ExpectSameAnswers(w, *engine, MakePrqQueries(w, q), MakePknnQueries(w, q),
                    "final");
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, EngineUpdateTest,
                         ::testing::Values(1, 2, 4, 7));

// ---------------------------------------------------------------------------
// I/O accounting
// ---------------------------------------------------------------------------

TEST_F(EngineWorldTest, AggregateIoIsTheSharedPool) {
  auto engine = MakeEngine(world(), 4, 2);
  // Every shard tree lives on one shared pool whose frame budget is
  // exactly the configured buffer_pages — no per-shard inflation.
  EXPECT_EQ(engine->buffer_frames_total(), world().params().buffer_pages);
  engine->ResetIo();
  IoStats zero = engine->aggregate_io();
  EXPECT_EQ(zero.physical_reads, 0u);
  EXPECT_EQ(zero.logical_fetches, 0u);

  QuerySetOptions q;
  q.count = 10;
  q.seed = 77;
  auto queries = MakePrqQueries(world(), q);
  for (const auto& query : queries) {
    ASSERT_TRUE(engine->RangeQuery(query.issuer, query.range, query.tq).ok());
  }
  IoStats after = engine->aggregate_io();
  EXPECT_GT(after.logical_fetches, 0u);
  // aggregate_io() IS the shared pool's traffic: each shard tree reports
  // the same totals (they share the pool), and the representative pool()
  // agrees.
  for (size_t s = 0; s < engine->num_shards(); ++s) {
    EXPECT_EQ(engine->shard_tree(s).aggregate_io().logical_fetches,
              after.logical_fetches);
  }
  EXPECT_EQ(engine->pool()->stats().logical_fetches, after.logical_fetches);
}

// ---------------------------------------------------------------------------
// LeafCursor fast path result equivalence
// ---------------------------------------------------------------------------

// A single PEB-tree on its own pool, configurable down to the legacy
// per-interval root-descent scan path (kept behind
// MovingIndexOptions::leaf_cursor_fast_path exactly for this test).
struct SingleTree {
  explicit SingleTree(Workload& w, bool fast_path, uint64_t coalesce_gap) {
    PebTreeOptions opts = eval::PebOptionsFor(w.params());
    opts.index.leaf_cursor_fast_path = fast_path;
    opts.index.zrange.coalesce_gap = coalesce_gap;
    pool = std::make_unique<BufferPool>(
        &disk, BufferPoolOptions{w.params().buffer_pages});
    tree = std::make_unique<PebTree>(pool.get(), opts, &w.store(), &w.roles(),
                                     &w.encoding());
    for (const MovingObject& o : w.dataset().objects) {
      EXPECT_TRUE(tree->Insert(o).ok());
    }
  }

  InMemoryDiskManager disk;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<PebTree> tree;
};

TEST_F(EngineWorldTest, FastPathAnswersAreBitIdenticalToLegacyDescents) {
  SingleTree legacy(world(), /*fast_path=*/false, /*coalesce_gap=*/0);
  SingleTree fast(world(), /*fast_path=*/true, /*coalesce_gap=*/3);

  QuerySetOptions q;
  q.count = 40;
  q.seed = 1234;
  auto prq = MakePrqQueries(world(), q);
  auto knn = MakePknnQueries(world(), q);

  for (const auto& query : prq) {
    auto a = legacy.tree->RangeQuery(query.issuer, query.range, query.tq);
    auto b = fast.tree->RangeQuery(query.issuer, query.range, query.tq);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
  QueryCounters fast_totals;
  for (const auto& query : knn) {
    auto a = legacy.tree->KnnQuery(query.issuer, query.qloc, query.k,
                                   query.tq);
    QueryStats stats;
    auto b = fast.tree->KnnQueryWithStats(query.issuer, query.qloc, query.k,
                                          query.tq, &stats);
    fast_totals += stats.counters;
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].uid, (*b)[i].uid);
      // Bit-identical: the fast path scans the same entries in the same
      // order, so even floating-point distances must match exactly.
      EXPECT_EQ((*a)[i].distance, (*b)[i].distance);
    }
  }
  // The fast path actually engaged: descents far below one per probe.
  EXPECT_GT(fast_totals.range_probes, 0u);
  EXPECT_LT(fast_totals.seek_descents, fast_totals.range_probes);
}

TEST_F(EngineWorldTest, EngineFastPathMatchesLegacySingleTree) {
  SingleTree legacy(world(), /*fast_path=*/false, /*coalesce_gap=*/0);
  auto engine = MakeEngine(world(), 4, 4);

  QuerySetOptions q;
  q.count = 30;
  q.seed = 4321;
  auto prq = MakePrqQueries(world(), q);
  for (const auto& query : prq) {
    auto a = legacy.tree->RangeQuery(query.issuer, query.range, query.tq);
    auto b = engine->RangeQuery(query.issuer, query.range, query.tq);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
  auto knn = MakePknnQueries(world(), q);
  for (const auto& query : knn) {
    auto a = legacy.tree->KnnQuery(query.issuer, query.qloc, query.k,
                                   query.tq);
    auto b = engine->KnnQuery(query.issuer, query.qloc, query.k, query.tq);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].uid, (*b)[i].uid);
      EXPECT_EQ((*a)[i].distance, (*b)[i].distance);
    }
  }
}

}  // namespace
}  // namespace peb
