#include <gtest/gtest.h>

#include <cmath>

#include "policy/compatibility.h"
#include "policy/lpp.h"
#include "policy/policy_generator.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "policy/sequence_value.h"

namespace peb {
namespace {

// ---------------------------------------------------------------------------
// TimeOfDayInterval
// ---------------------------------------------------------------------------

TEST(TimeOfDayInterval, DurationPlain) {
  TimeOfDayInterval iv{480, 1020};  // 8:00 - 17:00.
  EXPECT_DOUBLE_EQ(iv.Duration(), 540.0);
  EXPECT_DOUBLE_EQ(TimeOfDayInterval::AllDay().Duration(), 1440.0);
}

TEST(TimeOfDayInterval, DurationWrapping) {
  TimeOfDayInterval iv{1320, 120};  // 22:00 - 02:00.
  EXPECT_DOUBLE_EQ(iv.Duration(), 240.0);
}

TEST(TimeOfDayInterval, ContainsCyclic) {
  TimeOfDayInterval work{480, 1020};
  EXPECT_TRUE(work.Contains(480));
  EXPECT_TRUE(work.Contains(1020));
  EXPECT_TRUE(work.Contains(700));
  EXPECT_FALSE(work.Contains(100));
  // Absolute times are reduced modulo the day.
  EXPECT_TRUE(work.Contains(1440 + 700));
  EXPECT_TRUE(work.Contains(10 * 1440 + 480));

  TimeOfDayInterval night{1320, 120};
  EXPECT_TRUE(night.Contains(1400));
  EXPECT_TRUE(night.Contains(60));
  EXPECT_FALSE(night.Contains(700));
}

TEST(TimeOfDayInterval, OverlapPlain) {
  TimeOfDayInterval a{100, 500};
  TimeOfDayInterval b{400, 800};
  EXPECT_DOUBLE_EQ(a.OverlapDuration(b), 100.0);
  EXPECT_DOUBLE_EQ(b.OverlapDuration(a), 100.0);
  TimeOfDayInterval c{600, 700};
  EXPECT_DOUBLE_EQ(a.OverlapDuration(c), 0.0);
}

TEST(TimeOfDayInterval, OverlapWrapping) {
  TimeOfDayInterval night{1320, 120};  // 22:00-02:00.
  TimeOfDayInterval early{0, 240};     // 00:00-04:00.
  EXPECT_DOUBLE_EQ(night.OverlapDuration(early), 120.0);
  TimeOfDayInterval late{1200, 1440};  // 20:00-24:00.
  EXPECT_DOUBLE_EQ(night.OverlapDuration(late), 120.0);
  // Two wrapping intervals.
  TimeOfDayInterval other{1380, 60};
  EXPECT_DOUBLE_EQ(night.OverlapDuration(other), 120.0);
}

// ---------------------------------------------------------------------------
// Lpp + roles
// ---------------------------------------------------------------------------

TEST(Lpp, PermitsChecksAllThreeConditions) {
  Lpp p;
  p.role = 2;
  p.locr = {{0, 0}, {500, 500}};
  p.tint = {480, 1020};
  EXPECT_TRUE(p.Permits(2, {100, 100}, 600));
  EXPECT_FALSE(p.Permits(3, {100, 100}, 600));   // Wrong role.
  EXPECT_FALSE(p.Permits(2, {600, 100}, 600));   // Outside locr.
  EXPECT_FALSE(p.Permits(2, {100, 100}, 100));   // Outside tint.
}

TEST(RoleRegistry, RegisterAssignRevoke) {
  RoleRegistry reg;
  RoleId friend_role = reg.RegisterRole("friend");
  RoleId colleague = reg.RegisterRole("colleague");
  EXPECT_NE(friend_role, colleague);
  EXPECT_EQ(reg.RegisterRole("friend"), friend_role);  // Idempotent.
  EXPECT_EQ(reg.RoleName(colleague), "colleague");
  EXPECT_EQ(reg.num_roles(), 2u);

  reg.AssignRole(1, 2, friend_role);
  reg.AssignRole(1, 2, friend_role);  // Duplicate ignored.
  reg.AssignRole(1, 2, colleague);
  EXPECT_TRUE(reg.HasRole(1, 2, friend_role));
  EXPECT_FALSE(reg.HasRole(2, 1, friend_role));  // Directed.
  EXPECT_EQ(reg.RolesOf(1, 2).size(), 2u);
  EXPECT_EQ(reg.num_assignments(), 2u);

  reg.RevokeRole(1, 2, friend_role);
  EXPECT_FALSE(reg.HasRole(1, 2, friend_role));
  EXPECT_TRUE(reg.HasRole(1, 2, colleague));
  EXPECT_EQ(reg.num_assignments(), 1u);
}

TEST(PolicyStore, AddGetRemoveAndReverseIndex) {
  PolicyStore store;
  Lpp p;
  p.role = 1;
  p.locr = Rect::Space(1000);
  p.tint = TimeOfDayInterval::AllDay();
  store.Add(10, 20, p);
  store.Add(10, 30, p);
  store.Add(40, 20, p);

  EXPECT_EQ(store.num_policies(), 3u);
  EXPECT_EQ(store.Get(10, 20).size(), 1u);
  EXPECT_TRUE(store.Get(20, 10).empty());  // Directed.
  EXPECT_EQ(store.NumPoliciesOf(10), 2u);

  auto owners = store.OwnersToward(20);
  EXPECT_EQ(owners.size(), 2u);  // 10 and 40 both cover 20.
  EXPECT_EQ(store.PeersOf(10).size(), 2u);

  EXPECT_EQ(store.RemoveAll(10, 20), 1u);
  EXPECT_EQ(store.num_policies(), 2u);
  EXPECT_EQ(store.OwnersToward(20).size(), 1u);
  EXPECT_EQ(store.RemoveAll(10, 20), 0u);  // Already gone.
}

TEST(PolicyStore, MultiplePoliciesPerPair) {
  PolicyStore store;
  Lpp day;
  day.role = 1;
  day.locr = {{0, 0}, {100, 100}};
  day.tint = {480, 1020};
  Lpp night;
  night.role = 1;
  night.locr = {{500, 500}, {900, 900}};
  night.tint = {1320, 120};
  store.Add(1, 2, day);
  store.Add(1, 2, night);
  EXPECT_EQ(store.Get(1, 2).size(), 2u);

  RoleRegistry reg;
  reg.AssignRole(1, 2, 1);
  // Day region during day: allowed by the first policy.
  EXPECT_TRUE(store.Allows(1, 2, {50, 50}, 600, reg));
  // Night region at night: allowed by the second.
  EXPECT_TRUE(store.Allows(1, 2, {600, 600}, 1400, reg));
  // Day region at night: neither applies.
  EXPECT_FALSE(store.Allows(1, 2, {50, 50}, 1400, reg));
}

TEST(PolicyStore, AllowsRequiresRole) {
  PolicyStore store;
  RoleRegistry reg;
  RoleId r = reg.RegisterRole("friend");
  Lpp p;
  p.role = r;
  p.locr = Rect::Space(1000);
  p.tint = TimeOfDayInterval::AllDay();
  store.Add(1, 2, p);
  // Policy exists but 1 never declared 2 a friend: denied.
  EXPECT_FALSE(store.Allows(1, 2, {1, 1}, 0, reg));
  reg.AssignRole(1, 2, r);
  EXPECT_TRUE(store.Allows(1, 2, {1, 1}, 0, reg));
}

// ---------------------------------------------------------------------------
// Compatibility (Section 5.1 / Equation 4)
// ---------------------------------------------------------------------------

class CompatTest : public ::testing::Test {
 protected:
  CompatTest() {
    opts_.space = Rect::Space(1000);
    opts_.time_domain = 1440;
  }

  Lpp Make(Rect r, TimeOfDayInterval t) {
    Lpp p;
    p.role = 1;
    p.locr = r;
    p.tint = t;
    return p;
  }

  CompatibilityOptions opts_;
};

TEST_F(CompatTest, NoPoliciesGivesZero) {
  auto a = ComputeAlpha({}, {}, opts_);
  EXPECT_EQ(a.kase, CompatibilityCase::kNone);
  EXPECT_DOUBLE_EQ(CompatibilityFromAlpha(a), 0.0);
}

TEST_F(CompatTest, BidirectionalOverlap) {
  // Both policies: same half-space region, overlapping half-days.
  Lpp p12 = Make({{0, 0}, {500, 1000}}, {0, 720});
  Lpp p21 = Make({{250, 0}, {750, 1000}}, {360, 1080});
  auto a = ComputeAlpha({&p12, 1}, {&p21, 1}, opts_);
  EXPECT_EQ(a.kase, CompatibilityCase::kBidirectional);
  // O = 250*1000, S = 10^6 -> 0.25. D = 360, T = 1440 -> 0.25.
  EXPECT_NEAR(a.alpha, 0.0625, 1e-12);
  double c = CompatibilityFromAlpha(a);
  EXPECT_NEAR(c, 0.53125, 1e-12);
  EXPECT_GT(c, 0.5);  // Bidirectional always exceeds 1/2.
}

TEST_F(CompatTest, OneDirectionalWhenRegionsDisjoint) {
  Lpp p12 = Make({{0, 0}, {200, 200}}, {0, 720});       // 0.04 * 0.5 = 0.02
  Lpp p21 = Make({{800, 800}, {1000, 1000}}, {0, 720}); // 0.04 * 0.5 = 0.02
  auto a = ComputeAlpha({&p12, 1}, {&p21, 1}, opts_);
  EXPECT_EQ(a.kase, CompatibilityCase::kOneDirectional);
  EXPECT_NEAR(a.alpha, 0.02, 1e-12);
  double c = CompatibilityFromAlpha(a);
  EXPECT_NEAR(c, 0.02, 1e-12);
  EXPECT_LE(c, 0.5);  // One-directional never exceeds 1/2.
}

TEST_F(CompatTest, OneDirectionalWhenTimesDisjoint) {
  Lpp p12 = Make(Rect::Space(1000), {0, 360});
  Lpp p21 = Make(Rect::Space(1000), {720, 1080});
  auto a = ComputeAlpha({&p12, 1}, {&p21, 1}, opts_);
  EXPECT_EQ(a.kase, CompatibilityCase::kOneDirectional);
  // 1/2 (1*0.25 + 1*0.25) = 0.25.
  EXPECT_NEAR(a.alpha, 0.25, 1e-12);
}

TEST_F(CompatTest, SingleSidedPolicyOmitsMissingTerm) {
  Lpp p12 = Make({{0, 0}, {500, 1000}}, {0, 720});  // 0.5 * 0.5 = 0.25.
  auto a = ComputeAlpha({&p12, 1}, {}, opts_);
  EXPECT_EQ(a.kase, CompatibilityCase::kOneDirectional);
  EXPECT_NEAR(a.alpha, 0.125, 1e-12);  // 1/2 * 0.25.
  EXPECT_NEAR(CompatibilityFromAlpha(a), 0.125, 1e-12);
}

TEST_F(CompatTest, MaximalOverlapGivesCOne) {
  Lpp full = Make(Rect::Space(1000), TimeOfDayInterval::AllDay());
  auto a = ComputeAlpha({&full, 1}, {&full, 1}, opts_);
  EXPECT_EQ(a.kase, CompatibilityCase::kBidirectional);
  EXPECT_NEAR(a.alpha, 1.0, 1e-12);
  EXPECT_NEAR(CompatibilityFromAlpha(a), 1.0, 1e-12);
}

TEST_F(CompatTest, MultiplePoliciesUseBestPairing) {
  Lpp small12 = Make({{0, 0}, {10, 10}}, {0, 10});
  Lpp big12 = Make({{0, 0}, {800, 800}}, {0, 1200});
  Lpp p21 = Make({{0, 0}, {800, 800}}, {0, 1200});
  std::vector<Lpp> side12{small12, big12};
  auto a = ComputeAlpha(side12, {&p21, 1}, opts_);
  EXPECT_EQ(a.kase, CompatibilityCase::kBidirectional);
  // Best pairing is big12 x p21: (0.64)^... O/S = 0.64, D/T = 1200/1440.
  EXPECT_NEAR(a.alpha, 0.64 * (1200.0 / 1440.0), 1e-12);
}

TEST_F(CompatTest, StoreCompatibilityIsSymmetric) {
  PolicyStore store;
  store.Add(1, 2, Make({{0, 0}, {500, 500}}, {0, 720}));
  store.Add(2, 1, Make({{250, 250}, {750, 750}}, {360, 1080}));
  double c12 = Compatibility(store, 1, 2, opts_);
  double c21 = Compatibility(store, 2, 1, opts_);
  EXPECT_DOUBLE_EQ(c12, c21);
  EXPECT_GT(c12, 0.5);
}

// ---------------------------------------------------------------------------
// Sequence-value assignment: the paper's worked example (Section 5.1).
// ---------------------------------------------------------------------------

TEST(SequenceValues, PaperWorkedExample) {
  // Users u1..u6 (0-indexed as 0..5). Compatibilities:
  // C(u2,u1)=0.4, C(u4,u1)=0.9, C(u4,u3)=0.8, C(u5,u3)=0.2, C(u6,u3)=0.6.
  auto C = [](UserId a, UserId b) -> double {
    auto key = [](UserId x, UserId y) { return x * 10 + y; };
    uint32_t k = a < b ? key(a, b) : key(b, a);
    switch (k) {
      case 1:  return 0.4;  // (u1,u2) -> ids (0,1)
      case 3:  return 0.9;  // (u1,u4) -> ids (0,3)
      case 23: return 0.8;  // (u3,u4) -> ids (2,3)
      case 24: return 0.2;  // (u3,u5) -> ids (2,4)
      case 25: return 0.6;  // (u3,u6) -> ids (2,5)
      default: return 0.0;
    }
  };
  std::vector<std::vector<UserId>> groups(6);
  auto link = [&](UserId a, UserId b) {
    groups[a].push_back(b);
    groups[b].push_back(a);
  };
  link(0, 1);  // u1-u2
  link(0, 3);  // u1-u4
  link(2, 3);  // u3-u4
  link(2, 4);  // u3-u5
  link(2, 5);  // u3-u6

  SequenceValueOptions opt;
  opt.initial_sv = 2.0;
  opt.delta = 2.0;
  auto out = AssignSequenceValuesFromGraph(6, groups, C, opt);

  // Sorted by |G| desc: u3 (3 related), u1 (2), u4 (2), u2, u5, u6.
  EXPECT_EQ(out.order[0], 2u);  // u3 first.
  // Paper's result: SV(u3)=2, SV(u4)=2.2, SV(u5)=2.8, SV(u6)=2.4,
  // SV(u1)=4, SV(u2)=4.6.
  EXPECT_NEAR(out.sv[2], 2.0, 1e-12);
  EXPECT_NEAR(out.sv[3], 2.2, 1e-12);
  EXPECT_NEAR(out.sv[4], 2.8, 1e-12);
  EXPECT_NEAR(out.sv[5], 2.4, 1e-12);
  EXPECT_NEAR(out.sv[0], 4.0, 1e-12);
  EXPECT_NEAR(out.sv[1], 4.6, 1e-12);
  EXPECT_EQ(out.num_anchors, 2u);  // u3 and u1.
}

TEST(SequenceValues, AllUsersGetValues) {
  // Star graph: user 0 related to everyone.
  const size_t n = 20;
  std::vector<std::vector<UserId>> groups(n);
  for (UserId i = 1; i < n; ++i) {
    groups[0].push_back(i);
    groups[i].push_back(0);
  }
  auto out = AssignSequenceValuesFromGraph(
      n, groups, [](UserId, UserId) { return 0.5; }, {});
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(out.sv[i], 2.0) << i;
  }
  EXPECT_EQ(out.num_anchors, 1u);
  // All members sit at anchor + 0.5.
  for (UserId i = 1; i < n; ++i) {
    EXPECT_NEAR(out.sv[i], out.sv[0] + 0.5, 1e-12);
  }
}

TEST(SequenceValues, IsolatedUsersBecomeAnchorsSeparatedByDelta) {
  const size_t n = 5;
  std::vector<std::vector<UserId>> groups(n);
  SequenceValueOptions opt;
  opt.initial_sv = 2.0;
  opt.delta = 2.0;
  auto out = AssignSequenceValuesFromGraph(
      n, groups, [](UserId, UserId) { return 0.0; }, opt);
  EXPECT_EQ(out.num_anchors, n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(out.sv[out.order[i]], 2.0 + 2.0 * i, 1e-12);
  }
}

TEST(SequenceValues, HigherCompatibilityGivesCloserValues) {
  std::vector<std::vector<UserId>> groups(3);
  groups[0] = {1, 2};
  groups[1] = {0};
  groups[2] = {0};
  auto C = [](UserId a, UserId b) -> double {
    UserId lo = std::min(a, b), hi = std::max(a, b);
    if (lo == 0 && hi == 1) return 0.9;
    if (lo == 0 && hi == 2) return 0.1;
    return 0.0;
  };
  auto out = AssignSequenceValuesFromGraph(3, groups, C, {});
  EXPECT_LT(std::abs(out.sv[1] - out.sv[0]),
            std::abs(out.sv[2] - out.sv[0]));
}

// ---------------------------------------------------------------------------
// Quantizer and PolicyEncoding
// ---------------------------------------------------------------------------

TEST(SvQuantizer, ScalesAndClamps) {
  SvQuantizer q(64.0, 10);  // Max 1023.
  EXPECT_EQ(q.Quantize(0.0), 0u);
  EXPECT_EQ(q.Quantize(-3.0), 0u);
  EXPECT_EQ(q.Quantize(1.0), 64u);
  EXPECT_EQ(q.Quantize(2.2), 141u);  // round(140.8).
  EXPECT_EQ(q.Quantize(1e9), 1023u);  // Clamped.
}

TEST(SvQuantizer, PreservesOrderUpToTies) {
  SvQuantizer q(64.0, 26);
  double prev = 0.0;
  for (double sv = 0.0; sv < 100.0; sv += 0.37) {
    EXPECT_GE(q.Quantize(sv), q.Quantize(prev));
    prev = sv;
  }
}

TEST(PolicyEncoding, FriendListsSortedAndComplete) {
  PolicyGeneratorOptions opt;
  opt.num_users = 300;
  opt.policies_per_user = 10;
  opt.grouping_factor = 0.5;
  opt.seed = 77;
  GeneratedPolicies gen = GeneratePolicies(opt);

  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  PolicyEncoding enc = PolicyEncoding::Build(gen.store, opt.num_users, compat,
                                             {}, quant);

  EXPECT_EQ(enc.num_users(), 300u);
  for (UserId u = 0; u < 300; ++u) {
    EXPECT_GT(enc.sv(u), 0.0);
    EXPECT_EQ(enc.quantized_sv(u), quant.Quantize(enc.sv(u)));
    const auto& friends = enc.FriendsOf(u);
    // Friend list = exactly the users with a policy toward u.
    auto owners = gen.store.OwnersToward(u);
    EXPECT_EQ(friends.size(), owners.size());
    for (size_t i = 0; i < friends.size(); ++i) {
      if (i > 0) {
        EXPECT_GE(friends[i].qsv, friends[i - 1].qsv);
      }
      EXPECT_EQ(friends[i].qsv, enc.quantized_sv(friends[i].uid));
      EXPECT_FALSE(gen.store.Get(friends[i].uid, u).empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Policy generator (Sections 6-7.1 workload shape)
// ---------------------------------------------------------------------------

TEST(PolicyGenerator, PolicyCountPerUser) {
  PolicyGeneratorOptions opt;
  opt.num_users = 500;
  opt.policies_per_user = 20;
  opt.grouping_factor = 0.7;
  opt.seed = 5;
  GeneratedPolicies gen = GeneratePolicies(opt);
  EXPECT_EQ(gen.store.num_policies(), 500u * 20u);
  for (UserId u = 0; u < 500; ++u) {
    EXPECT_EQ(gen.store.NumPoliciesOf(u), 20u);
  }
}

TEST(PolicyGenerator, GroupingFactorControlsInGroupShare) {
  auto in_group_share = [](double theta) {
    PolicyGeneratorOptions opt;
    opt.num_users = 1000;
    opt.policies_per_user = 20;
    opt.grouping_factor = theta;
    opt.seed = 9;
    GeneratedPolicies gen = GeneratePolicies(opt);
    size_t in_group = 0, total = 0;
    for (UserId u = 0; u < 1000; ++u) {
      size_t g = u / gen.group_size;
      for (UserId peer : gen.store.PeersOf(u)) {
        total++;
        if (peer / gen.group_size == g) in_group++;
      }
    }
    return static_cast<double>(in_group) / static_cast<double>(total);
  };
  EXPECT_NEAR(in_group_share(1.0), 1.0, 0.02);
  EXPECT_NEAR(in_group_share(0.7), 0.7, 0.05);
  // theta=0: targets uniform; hitting one's own small group is rare.
  EXPECT_LT(in_group_share(0.0), 0.15);
}

TEST(PolicyGenerator, RolesBackEveryPolicy) {
  PolicyGeneratorOptions opt;
  opt.num_users = 200;
  opt.policies_per_user = 5;
  opt.seed = 3;
  GeneratedPolicies gen = GeneratePolicies(opt);
  for (UserId u = 0; u < 200; ++u) {
    for (UserId peer : gen.store.PeersOf(u)) {
      EXPECT_TRUE(gen.roles.HasRole(u, peer, gen.friend_role));
      for (const Lpp& p : gen.store.Get(u, peer)) {
        EXPECT_EQ(p.role, gen.friend_role);
        EXPECT_FALSE(p.locr.Empty());
        EXPECT_GT(p.tint.Duration(opt.time_domain), 0.0);
        // Regions stay inside the space (clamped).
        EXPECT_TRUE(Rect::Space(1000).ContainsRect(p.locr));
      }
    }
  }
}

TEST(PolicyGenerator, DeterministicPerSeed) {
  PolicyGeneratorOptions opt;
  opt.num_users = 100;
  opt.policies_per_user = 8;
  opt.seed = 123;
  GeneratedPolicies a = GeneratePolicies(opt);
  GeneratedPolicies b = GeneratePolicies(opt);
  ASSERT_EQ(a.store.num_policies(), b.store.num_policies());
  for (UserId u = 0; u < 100; ++u) {
    auto pa = a.store.PeersOf(u);
    auto pb = b.store.PeersOf(u);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i], pb[i]);
      auto la = a.store.Get(u, pa[i]);
      auto lb = b.store.Get(u, pb[i]);
      ASSERT_EQ(la.size(), lb.size());
      EXPECT_EQ(la[0].locr, lb[0].locr);
      EXPECT_EQ(la[0].tint, lb[0].tint);
    }
  }
}

TEST(PolicyGenerator, NoSelfPolicies) {
  PolicyGeneratorOptions opt;
  opt.num_users = 150;
  opt.policies_per_user = 10;
  opt.seed = 55;
  GeneratedPolicies gen = GeneratePolicies(opt);
  for (UserId u = 0; u < 150; ++u) {
    for (UserId peer : gen.store.PeersOf(u)) {
      EXPECT_NE(peer, u);
    }
  }
}

}  // namespace
}  // namespace peb
