#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "costmodel/cost_model.h"

namespace peb {
namespace {

TEST(CostC1, Theta1GivesMinimumCost) {
  CostModelInputs in;
  in.policies_per_user = 50;
  in.num_leaves = 600;
  in.grouping_factor = 1.0;
  // Np - Np^1 = 0: only the single mandatory leaf remains.
  EXPECT_DOUBLE_EQ(CostC1(in), 1.0);
}

TEST(CostC1, Theta0GivesWorstCase) {
  CostModelInputs in;
  in.policies_per_user = 50;
  in.num_leaves = 600;
  in.grouping_factor = 0.0;
  // Np - Np^0 = Np - 1 -> upper bound: every related user on its own leaf.
  EXPECT_DOUBLE_EQ(CostC1(in), 50.0);
}

TEST(CostC1, MonotoneDecreasingInTheta) {
  CostModelInputs in;
  in.policies_per_user = 50;
  in.num_leaves = 600;
  double prev = 1e18;
  for (double theta = 0.0; theta <= 1.0; theta += 0.1) {
    in.grouping_factor = theta;
    double c = CostC1(in);
    EXPECT_LE(c, prev);
    prev = c;
  }
}

TEST(CostC1, LeafCountCapsTheBound) {
  CostModelInputs in;
  in.policies_per_user = 5000;
  in.num_leaves = 100;  // Np > Nl: cost bounded by leaves, not policies.
  in.grouping_factor = 0.0;
  EXPECT_DOUBLE_EQ(CostC1(in), 1.0 + (100.0 - 1.0));
}

TEST(CostModel, EstimateMatchesClosedForm) {
  CostModel m(10.0, 0.3);  // The paper's uniform-data constants.
  CostModelInputs in;
  in.num_users = 60000;
  in.policies_per_user = 50;
  in.grouping_factor = 0.7;
  in.num_leaves = 900;
  in.space_side = 1000;
  double density = 60000.0 / 1e6;
  double term = 50.0 - std::pow(50.0, 0.7);
  EXPECT_NEAR(m.EstimateIo(in), 1.0 + (10.0 * density + 0.3) * term, 1e-9);
}

TEST(CostModel, CalibrationRecoversParameters) {
  // Fabricate measurements from a known model, then recover it.
  CostModel truth(7.5, 0.42);
  CostSample s1, s2;
  s1.inputs.num_users = 20000;
  s1.inputs.policies_per_user = 30;
  s1.inputs.grouping_factor = 0.6;
  s1.inputs.num_leaves = 300;
  s1.measured_io = truth.EstimateIo(s1.inputs);
  s2.inputs = s1.inputs;
  s2.inputs.num_users = 80000;
  s2.inputs.num_leaves = 1200;
  s2.measured_io = truth.EstimateIo(s2.inputs);

  auto fitted = CostModel::Calibrate(s1, s2);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->a1(), 7.5, 1e-9);
  EXPECT_NEAR(fitted->a2(), 0.42, 1e-9);
}

TEST(CostModel, CalibrationRejectsDegenerateSamples) {
  CostSample s1, s2;
  s1.inputs.num_users = 60000;
  s1.measured_io = 10;
  s2.inputs.num_users = 60000;  // Same density: singular system.
  s2.measured_io = 12;
  EXPECT_FALSE(CostModel::Calibrate(s1, s2).ok());

  CostSample g1 = s1;
  g1.inputs.grouping_factor = 1.0;  // Zero grouping term.
  g1.inputs.policies_per_user = 50;
  CostSample g2 = s2;
  g2.inputs.num_users = 80000;
  EXPECT_FALSE(CostModel::Calibrate(g1, g2).ok());
}

TEST(CostModel, CostGrowsWithDensityAndPolicies) {
  CostModel m(10.0, 0.3);
  CostModelInputs in;
  in.policies_per_user = 50;
  in.grouping_factor = 0.7;
  in.num_leaves = 900;
  in.num_users = 10000;
  double lo = m.EstimateIo(in);
  in.num_users = 100000;
  double hi = m.EstimateIo(in);
  EXPECT_GT(hi, lo);

  in.policies_per_user = 10;
  double fewer = m.EstimateIo(in);
  in.policies_per_user = 100;
  double more = m.EstimateIo(in);
  EXPECT_GT(more, fewer);
}

}  // namespace

TEST(KnnSeed, ExpectedDistanceMatchesPaperClosedForm) {
  // Dk(n, k) from Section 5.4, scaled to the space side.
  double n = 60000, L = 1000;
  size_t k = 5;
  double ratio = k / n;
  double want = 2.0 / std::sqrt(std::numbers::pi) *
                (1.0 - std::sqrt(1.0 - std::sqrt(ratio))) * L;
  EXPECT_NEAR(ExpectedKnnDistance(n, k, L), want, 1e-9);
  // Degenerate populations clamp instead of dividing by zero.
  EXPECT_GT(ExpectedKnnDistance(0, 1, L), 0.0);
}

TEST(KnnSeed, SeedShrinksWithCandidateDensityAndGrowsWithK) {
  KnnSeedInputs in;
  in.space_side = 1000.0;
  in.k = 5;
  in.candidate_count = 50;
  double sparse = EstimateKnnSeedRadius(in);
  in.candidate_count = 5000;
  double dense = EstimateKnnSeedRadius(in);
  EXPECT_LT(dense, sparse);

  in.candidate_count = 50;
  in.k = 20;
  double deeper = EstimateKnnSeedRadius(in);
  EXPECT_GT(deeper, sparse);
}

TEST(KnnSeed, ClampedToSpaceDiagonal) {
  KnnSeedInputs in;
  in.space_side = 1000.0;
  in.k = 100;
  in.candidate_count = 1;  // k far above the candidates: want everything.
  double seed = EstimateKnnSeedRadius(in);
  EXPECT_LE(seed, in.space_side * std::numbers::sqrt2 + 1e-9);
  EXPECT_GT(seed, in.space_side);  // Covers the space in very few rounds.
}

}  // namespace peb
