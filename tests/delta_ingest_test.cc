// Log-structured ingestion tests: with delta_ingest on, every response —
// PRQ, PkNN, GetObject, size, continuous-query results and event streams —
// must be bit-identical to a direct-apply engine replayed at the same
// update prefix, across shard counts, under randomized interleavings of
// update batches, joins/leaves, queries, and explicit merges. A concurrent
// smoke (background merge thread + writers + readers) runs under the TSan
// CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "eval/runner.h"
#include "eval/workload.h"
#include "peb/continuous.h"

namespace peb {
namespace {

using engine::EngineOptions;
using engine::ShardedPebEngine;
using eval::CloneUniformUpdateStream;
using eval::MakePknnQueries;
using eval::MakePrqQueries;
using eval::QuerySetOptions;
using eval::Workload;
using eval::WorkloadParams;

std::unique_ptr<ShardedPebEngine> MakeModeEngine(Workload& w, size_t shards,
                                                 bool delta_ingest,
                                                 size_t merge_threshold,
                                                 size_t hard_cap = 0,
                                                 size_t background_ms = 0,
                                                 bool paranoid = true) {
  EngineOptions opts;
  opts.num_shards = shards;
  opts.num_threads = shards == 1 ? 0 : 4;
  opts.buffer_pages = w.params().buffer_pages;
  opts.tree = eval::PebOptionsFor(w.params());
  opts.tree.index.delta_ingest = delta_ingest;
  opts.tree.index.paranoid_checks = paranoid;
  opts.delta.merge_threshold = merge_threshold;
  opts.delta.hard_cap = hard_cap;
  opts.delta.background_merge_period_ms = background_ms;
  auto engine = std::make_unique<ShardedPebEngine>(
      opts, &w.store(), &w.roles(), w.catalog()->snapshot());
  EXPECT_TRUE(engine->LoadDataset(w.dataset()).ok());
  return engine;
}

std::vector<Neighbor> Normalized(std::vector<Neighbor> v) {
  std::sort(v.begin(), v.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.uid < b.uid;
  });
  return v;
}

/// Every query answer of `got` (delta-ingest) bit-identical to `want`
/// (direct-apply oracle) at the same update prefix.
void ExpectSameAnswers(Workload& w, ShardedPebEngine& got,
                       ShardedPebEngine& want, uint64_t query_seed,
                       const char* context) {
  QuerySetOptions q;
  q.count = 10;
  q.window_side = 250.0;
  q.seed = query_seed;
  for (const auto& prq : MakePrqQueries(w, q)) {
    auto a = got.RangeQuery(prq.issuer, prq.range, prq.tq);
    auto b = want.RangeQuery(prq.issuer, prq.range, prq.tq);
    ASSERT_TRUE(a.ok() && b.ok()) << context;
    EXPECT_EQ(*a, *b) << context;
  }
  for (const auto& knn : MakePknnQueries(w, q)) {
    auto a = got.KnnQuery(knn.issuer, knn.qloc, knn.k, knn.tq);
    auto b = want.KnnQuery(knn.issuer, knn.qloc, knn.k, knn.tq);
    ASSERT_TRUE(a.ok() && b.ok()) << context;
    std::vector<Neighbor> an = Normalized(*a);
    std::vector<Neighbor> bn = Normalized(*b);
    ASSERT_EQ(an.size(), bn.size()) << context;
    for (size_t r = 0; r < an.size(); ++r) {
      EXPECT_EQ(an[r].uid, bn[r].uid) << context << " rank " << r;
      EXPECT_DOUBLE_EQ(an[r].distance, bn[r].distance)
          << context << " rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized interleaving vs the direct-apply oracle
// ---------------------------------------------------------------------------

class DeltaIngestOracleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DeltaIngestOracleTest, RandomInterleavingMatchesDirectApply) {
  const size_t shards = GetParam();
  WorkloadParams wp;
  wp.num_users = 500;
  wp.policies_per_user = 10;
  wp.buffer_pages = 64;
  wp.grid_bits = 8;
  wp.seed = 29;
  Workload w = Workload::Build(wp);

  // Small merge threshold so the interleaving crosses many merge points;
  // paranoid_checks audits delta/tree agreement inside every one of them.
  auto delta = MakeModeEngine(w, shards, /*delta_ingest=*/true,
                              /*merge_threshold=*/48);
  auto direct = MakeModeEngine(w, shards, /*delta_ingest=*/false,
                               /*merge_threshold=*/48);
  ASSERT_TRUE(delta->delta_ingest_enabled());
  ASSERT_FALSE(direct->delta_ingest_enabled());

  // One deterministic event sequence, applied to both engines.
  auto stream = CloneUniformUpdateStream(w);
  ASSERT_NE(stream, nullptr);

  // Continuous queries over each engine, fed identically in stream order.
  ContinuousQueryMonitor mon_delta(delta.get(), &w.store(), &w.roles(),
                                   w.catalog()->snapshot());
  ContinuousQueryMonitor mon_direct(direct.get(), &w.store(), &w.roles(),
                                    w.catalog()->snapshot());
  Timestamp now = w.params().delta_t_mu;
  std::vector<ContinuousQueryId> cq_delta;
  std::vector<ContinuousQueryId> cq_direct;
  {
    QuerySetOptions q;
    q.count = 5;
    q.window_side = 300.0;
    q.seed = 4242;
    for (const auto& prq : MakePrqQueries(w, q)) {
      auto a = mon_delta.Register(prq.issuer, prq.range, now);
      auto b = mon_direct.Register(prq.issuer, prq.range, now);
      ASSERT_TRUE(a.ok() && b.ok());
      cq_delta.push_back(*a);
      cq_direct.push_back(*b);
    }
    // Seeding runs through each engine's PRQ: identical already.
    EXPECT_EQ(mon_delta.TakeEvents(), mon_direct.TakeEvents());
  }

  std::mt19937 rng(1000 + shards);
  std::vector<UserId> alive(wp.num_users);
  for (UserId u = 0; u < wp.num_users; ++u) alive[u] = u;
  std::vector<UserId> removed;

  auto check_continuous = [&](const char* context) {
    for (size_t i = 0; i < cq_delta.size(); ++i) {
      auto a = mon_delta.ResultOf(cq_delta[i]);
      auto b = mon_direct.ResultOf(cq_direct[i]);
      ASSERT_TRUE(a.ok() && b.ok()) << context;
      EXPECT_EQ(*a, *b) << context << " continuous query " << i;
    }
  };

  for (int round = 0; round < 40; ++round) {
    switch (rng() % 6) {
      case 0:
      case 1: {  // Update batch, identically applied and monitor-fed.
        const size_t n = 1 + rng() % 96;
        std::vector<UpdateEvent> batch;
        batch.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          batch.push_back(stream->Next());
        }
        ASSERT_TRUE(delta->ApplyBatch(batch).ok());
        ASSERT_TRUE(direct->ApplyBatch(batch).ok());
        for (const UpdateEvent& ev : batch) {
          now = std::max(now, ev.t);
          // ApplyBatch upserts: a removed user who updates rejoins.
          removed.erase(std::remove(removed.begin(), removed.end(),
                                    ev.state.id),
                        removed.end());
          ASSERT_TRUE(mon_delta.OnUpdate(ev.state, ev.t).ok());
          ASSERT_TRUE(mon_direct.OnUpdate(ev.state, ev.t).ok());
        }
        break;
      }
      case 2: {  // Leave: tombstone in the delta, tree delete in the oracle.
        const UserId uid = static_cast<UserId>(rng() % wp.num_users);
        Status a = delta->Delete(uid);
        Status b = direct->Delete(uid);
        ASSERT_EQ(a.ok(), b.ok()) << a.message() << " vs " << b.message();
        EXPECT_EQ(a.message(), b.message());
        if (a.ok()) removed.push_back(uid);
        ASSERT_TRUE(mon_delta.Advance(now).ok());
        ASSERT_TRUE(mon_direct.Advance(now).ok());
        break;
      }
      case 3: {  // Join: sparse re-insert of a previously removed user.
        if (removed.empty()) break;
        const size_t pick = rng() % removed.size();
        const UserId uid = removed[pick];
        MovingObject obj;
        obj.id = uid;
        obj.pos = {static_cast<double>(rng() % 1000),
                   static_cast<double>(rng() % 1000)};
        obj.vel = {1.0, -1.0};
        obj.tu = now;
        Status a = delta->Insert(obj);
        Status b = direct->Insert(obj);
        ASSERT_EQ(a.ok(), b.ok()) << a.message() << " vs " << b.message();
        EXPECT_EQ(a.message(), b.message());
        removed.erase(removed.begin() + static_cast<ptrdiff_t>(pick));
        ASSERT_TRUE(mon_delta.OnUpdate(obj, now).ok());
        ASSERT_TRUE(mon_direct.OnUpdate(obj, now).ok());
        break;
      }
      case 4: {  // Explicit merge: must not change any answer.
        ASSERT_TRUE(delta->MergeDeltas().ok());
        break;
      }
      default: {  // Duplicate-insert / missing-delete status parity.
        const UserId uid = static_cast<UserId>(rng() % wp.num_users);
        MovingObject obj;
        obj.id = uid;
        obj.tu = now;
        Status a = delta->Insert(obj);
        Status b = direct->Insert(obj);
        ASSERT_EQ(a.ok(), b.ok());
        EXPECT_EQ(a.message(), b.message());
        if (a.ok()) {  // Was removed: keep the engines and books in sync.
          removed.erase(std::remove(removed.begin(), removed.end(), uid),
                        removed.end());
          ASSERT_TRUE(mon_delta.OnUpdate(obj, now).ok());
          ASSERT_TRUE(mon_direct.OnUpdate(obj, now).ok());
        }
        break;
      }
    }
    if (round % 4 == 0) {
      ExpectSameAnswers(w, *delta, *direct,
                        2000 + static_cast<uint64_t>(round), "round");
      check_continuous("round");
      EXPECT_EQ(mon_delta.TakeEvents(), mon_direct.TakeEvents());
      EXPECT_EQ(delta->size(), direct->size());
      // Spot-check GetObject, including tombstoned users.
      for (int probe = 0; probe < 8; ++probe) {
        const UserId uid = static_cast<UserId>(rng() % wp.num_users);
        auto a = delta->GetObject(uid);
        auto b = direct->GetObject(uid);
        ASSERT_EQ(a.ok(), b.ok()) << "GetObject " << uid;
        if (a.ok()) {
          EXPECT_EQ((*a).pos.x, (*b).pos.x);
          EXPECT_EQ((*a).pos.y, (*b).pos.y);
          EXPECT_EQ((*a).tu, (*b).tu);
        } else {
          EXPECT_EQ(a.status().message(), b.status().message());
        }
      }
    }
    if (round % 8 == 0) {
      ASSERT_TRUE(delta->ValidateInvariants().ok());
    }
  }

  // Settle and compare once more: a fully merged delta engine must still
  // agree, and its buffers must actually be empty.
  ASSERT_TRUE(delta->MergeDeltas().ok());
  EXPECT_EQ(delta->delta_stats().buffered_records, 0u);
  EXPECT_GT(delta->delta_stats().merges, 0u);
  EXPECT_GT(delta->delta_stats().appended_total, 0u);
  ExpectSameAnswers(w, *delta, *direct, 9999, "final");
  check_continuous("final");
  EXPECT_EQ(mon_delta.TakeEvents(), mon_direct.TakeEvents());
  EXPECT_EQ(delta->size(), direct->size());
  ASSERT_TRUE(delta->ValidateInvariants().ok());
  ASSERT_TRUE(direct->ValidateInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, DeltaIngestOracleTest,
                         ::testing::Values(1, 4));

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

TEST(DeltaIngestBackpressure, HardCapForcesInlineMergeOnTheWriter) {
  WorkloadParams wp;
  wp.num_users = 300;
  wp.policies_per_user = 8;
  wp.buffer_pages = 64;
  wp.grid_bits = 8;
  wp.seed = 31;
  Workload w = Workload::Build(wp);
  // Threshold high enough that only the hard cap can trigger merges.
  auto delta = MakeModeEngine(w, 2, /*delta_ingest=*/true,
                              /*merge_threshold=*/1u << 20,
                              /*hard_cap=*/32);
  auto direct = MakeModeEngine(w, 2, /*delta_ingest=*/false,
                               /*merge_threshold=*/1u << 20);
  auto stream = CloneUniformUpdateStream(w);
  for (int i = 0; i < 400; ++i) {
    UpdateEvent ev = stream->Next();
    ASSERT_TRUE(delta->Update(ev.state).ok());
    ASSERT_TRUE(direct->Update(ev.state).ok());
    // The per-shard buffer never grows past the cap plus the one record
    // appended after the forced merge.
    for (size_t s = 0; s < delta->num_shards(); ++s) {
      EXPECT_LE(delta->shard_delta_records(s), 33u);
    }
  }
  const auto stats = delta->delta_stats();
  EXPECT_GT(stats.backpressure_merges, 0u);
  EXPECT_EQ(stats.appended_total, 400u);
  ExpectSameAnswers(w, *delta, *direct, 777, "backpressure");
}

// ---------------------------------------------------------------------------
// Concurrent smoke: background merge thread + writers + readers (TSan)
// ---------------------------------------------------------------------------

TEST(DeltaIngestConcurrency, QueriesRaceUpdatesAndBackgroundMerges) {
  WorkloadParams wp;
  wp.num_users = 300;
  wp.policies_per_user = 8;
  wp.buffer_pages = 64;
  wp.grid_bits = 8;
  wp.seed = 37;
  Workload w = Workload::Build(wp);
  // Background merges every 1ms race the foreground traffic; paranoid off
  // so merge sections stay short and the interleaving space stays large.
  auto delta = MakeModeEngine(w, 4, /*delta_ingest=*/true,
                              /*merge_threshold=*/32, /*hard_cap=*/0,
                              /*background_ms=*/1, /*paranoid=*/false);
  auto direct = MakeModeEngine(w, 4, /*delta_ingest=*/false,
                               /*merge_threshold=*/32);
  auto stream = CloneUniformUpdateStream(w);

  constexpr size_t kBatches = 60;
  constexpr size_t kBatchSize = 20;
  std::vector<std::vector<UpdateEvent>> batches(kBatches);
  for (auto& batch : batches) {
    for (size_t i = 0; i < kBatchSize; ++i) {
      batch.push_back(stream->Next());
    }
  }

  // Bounded reader loops with yield gaps: an unbounded 100% shared-lock
  // duty cycle from several readers can starve the merge sections' writer
  // acquisition forever on reader-preferring rwlocks — a test pathology,
  // not an engine property (merges only need the occasional gap real
  // query traffic always has).
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (const auto& batch : batches) {
      EXPECT_TRUE(delta->ApplyBatch(batch).ok());
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(100 + r);
      QuerySetOptions q;
      q.count = 4;
      q.window_side = 250.0;
      q.seed = 600 + static_cast<uint64_t>(r);
      auto prqs = MakePrqQueries(w, q);
      auto knns = MakePknnQueries(w, q);
      for (int it = 0; it < 40 && !done.load(std::memory_order_acquire);
           ++it) {
        for (const auto& prq : prqs) {
          EXPECT_TRUE(
              delta->RangeQuery(prq.issuer, prq.range, prq.tq).ok());
        }
        for (const auto& knn : knns) {
          EXPECT_TRUE(
              delta->KnnQuery(knn.issuer, knn.qloc, knn.k, knn.tq).ok());
        }
        (void)delta->GetObject(static_cast<UserId>(rng() % wp.num_users));
        (void)delta->size();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::thread validator([&] {
    for (int it = 0; it < 20 && !done.load(std::memory_order_acquire);
         ++it) {
      EXPECT_TRUE(delta->ValidateInvariants().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  writer.join();
  for (auto& t : readers) t.join();
  validator.join();

  // Settle and compare against the oracle replayed at the same prefix.
  for (const auto& batch : batches) {
    ASSERT_TRUE(direct->ApplyBatch(batch).ok());
  }
  ASSERT_TRUE(delta->MergeDeltas().ok());
  EXPECT_EQ(delta->size(), direct->size());
  ExpectSameAnswers(w, *delta, *direct, 888, "concurrent-settled");
  ASSERT_TRUE(delta->ValidateInvariants().ok());
}

}  // namespace
}  // namespace peb
