#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "motion/uniform_generator.h"
#include "motion/update_stream.h"
#include "peb/peb_key.h"
#include "peb/peb_tree.h"
#include "policy/policy_generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace peb {
namespace {

// ---------------------------------------------------------------------------
// PEB key layout
// ---------------------------------------------------------------------------

TEST(PebKeyLayout, PackUnpackAndPriorities) {
  PebKeyLayout l;  // 4 + 26 + 20 bits.
  EXPECT_TRUE(l.Fits());
  EXPECT_EQ(l.total_bits(), 50u);
  uint64_t key = l.MakeKey(2, 123456, 54321);
  EXPECT_EQ(l.PartitionOfKey(key), 2u);
  EXPECT_EQ(l.SvOfKey(key), 123456u);
  EXPECT_EQ(l.ZvOfKey(key), 54321u);

  // Priority: TID > SV > ZV (Eq. 5 ordering).
  EXPECT_LT(l.MakeKey(0, 999999, 0xFFFFF), l.MakeKey(1, 0, 0));
  EXPECT_LT(l.MakeKey(1, 5, 0xFFFFF), l.MakeKey(1, 6, 0));
  EXPECT_LT(l.MakeKey(1, 5, 10), l.MakeKey(1, 5, 11));
}

TEST(PebKeyLayout, FitsDetectsOverflow) {
  PebKeyLayout l;
  l.tid_bits = 4;
  l.sv_bits = 26;
  l.grid_bits = 17;  // 4 + 26 + 34 = 64: exactly fits.
  EXPECT_TRUE(l.Fits());
  l.grid_bits = 18;  // 66 bits: too wide.
  EXPECT_FALSE(l.Fits());
}

// ---------------------------------------------------------------------------
// PEB tree fixture: small synthetic world checked against brute force.
// ---------------------------------------------------------------------------

struct PebWorld {
  Dataset dataset;
  GeneratedPolicies policies;
  std::unique_ptr<PolicyEncoding> encoding;
  InMemoryDiskManager disk;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<PebTree> tree;

  static PebWorld Build(size_t users, size_t policies_per_user, double theta,
                        uint64_t seed,
                        PrqStrategy prq = PrqStrategy::kPerFriendIntervals,
                        KnnOrder order = KnnOrder::kTriangular) {
    PebWorld w;
    UniformGeneratorOptions gen;
    gen.num_objects = users;
    gen.stagger_window = 120.0;
    gen.seed = seed;
    w.dataset = GenerateUniformDataset(gen);

    PolicyGeneratorOptions pg;
    pg.num_users = users;
    pg.policies_per_user = policies_per_user;
    pg.grouping_factor = theta;
    pg.seed = seed + 13;
    w.policies = GeneratePolicies(pg);

    CompatibilityOptions compat;
    SvQuantizer quant(64.0, 26);
    w.encoding = std::make_unique<PolicyEncoding>(PolicyEncoding::Build(
        w.policies.store, users, compat, {}, quant));

    w.pool = std::make_unique<BufferPool>(&w.disk, BufferPoolOptions{64});
    PebTreeOptions opt;
    opt.index.grid_bits = 8;
    opt.prq_strategy = prq;
    opt.knn_order = order;
    w.tree = std::make_unique<PebTree>(w.pool.get(), opt, &w.policies.store,
                                       &w.policies.roles, w.encoding.get());
    for (const auto& o : w.dataset.objects) {
      EXPECT_TRUE(w.tree->Insert(o).ok());
    }
    return w;
  }
};

TEST(PebTree, InsertDeleteUpdateLifecycle) {
  PebWorld w = PebWorld::Build(50, 5, 0.7, 1);
  EXPECT_EQ(w.tree->size(), 50u);
  EXPECT_TRUE(w.tree->Insert(w.dataset.objects[0]).IsAlreadyExists());

  MovingObject moved = w.dataset.objects[0];
  moved.pos = {1.0, 2.0};
  moved.tu = 60.0;
  ASSERT_TRUE(w.tree->Update(moved).ok());
  auto got = w.tree->GetObject(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->pos, (Point{1.0, 2.0}));

  ASSERT_TRUE(w.tree->Delete(0).ok());
  EXPECT_EQ(w.tree->size(), 49u);
  EXPECT_TRUE(w.tree->Delete(0).IsNotFound());
}

TEST(PebTree, RejectsObjectsOutsideEncoding) {
  PebWorld w = PebWorld::Build(50, 5, 0.7, 2);
  MovingObject stranger{999, {1, 1}, {0, 0}, 0};
  EXPECT_TRUE(w.tree->Insert(stranger).IsInvalidArgument());
}

TEST(PebTree, KeyClustersBySequenceValue) {
  PebWorld w = PebWorld::Build(100, 8, 1.0, 3);
  // Two users in the same generator group with policies toward each other
  // share nearby SVs, hence nearby keys; users in different groups differ
  // in the SV field first.
  const PebKeyLayout layout{4, 26, 8};
  for (UserId u = 0; u < 100; ++u) {
    MovingObject o = w.dataset.objects[u];
    uint64_t key = w.tree->KeyFor(o);
    EXPECT_EQ(layout.SvOfKey(key), w.encoding->quantized_sv(u));
  }
}

// ---------------------------------------------------------------------------
// PRQ / PkNN differential tests vs brute force, across strategies.
// ---------------------------------------------------------------------------

struct PebFuzzParams {
  uint64_t seed;
  size_t users;
  size_t policies;
  double theta;
  PrqStrategy prq;
  KnnOrder order;
};

class PebFuzzTest : public ::testing::TestWithParam<PebFuzzParams> {};

TEST_P(PebFuzzTest, PrqMatchesBruteForce) {
  const auto p = GetParam();
  PebWorld w = PebWorld::Build(p.users, p.policies, p.theta, p.seed, p.prq,
                               p.order);
  Rng rng(p.seed * 97);
  Timestamp tq = 120.0;
  for (int q = 0; q < 25; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(p.users));
    Rect range = Rect::CenteredSquare(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, rng.Uniform(50, 600));
    auto got = w.tree->RangeQuery(issuer, range, tq);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePrq(w.dataset, w.policies.store,
                                       w.policies.roles, issuer, range, tq);
    EXPECT_EQ(*got, want) << "query " << q << " issuer " << issuer;
  }
}

TEST_P(PebFuzzTest, PknnMatchesBruteForce) {
  const auto p = GetParam();
  PebWorld w = PebWorld::Build(p.users, p.policies, p.theta, p.seed + 1,
                               p.prq, p.order);
  Rng rng(p.seed * 101);
  Timestamp tq = 120.0;
  for (int q = 0; q < 20; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(p.users));
    Point qloc = w.dataset.objects[issuer].PositionAt(tq);
    size_t k = 1 + rng.NextBelow(8);
    auto got = w.tree->KnnQuery(issuer, qloc, k, tq);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePknn(w.dataset, w.policies.store,
                                        w.policies.roles, issuer, qloc, k, tq);
    ASSERT_EQ(got->size(), want.size()) << "query " << q;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR((*got)[i].distance, want[i].distance, 1e-6)
          << "query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PebFuzzTest,
    ::testing::Values(
        // Default configuration at varying grouping factors.
        PebFuzzParams{1, 500, 10, 0.7, PrqStrategy::kPerFriendIntervals,
                      KnnOrder::kTriangular},
        PebFuzzParams{2, 500, 10, 0.0, PrqStrategy::kPerFriendIntervals,
                      KnnOrder::kTriangular},
        PebFuzzParams{3, 500, 10, 1.0, PrqStrategy::kPerFriendIntervals,
                      KnnOrder::kTriangular},
        // Figure-7 span-scan ablation must agree on results.
        PebFuzzParams{4, 400, 8, 0.7, PrqStrategy::kSpanScan,
                      KnnOrder::kTriangular},
        // Column-major kNN order ablation.
        PebFuzzParams{5, 400, 8, 0.7, PrqStrategy::kPerFriendIntervals,
                      KnnOrder::kColumnMajor},
        // Many policies per user.
        PebFuzzParams{6, 300, 40, 0.5, PrqStrategy::kPerFriendIntervals,
                      KnnOrder::kTriangular},
        // Tiny friend lists.
        PebFuzzParams{7, 600, 2, 0.7, PrqStrategy::kPerFriendIntervals,
                      KnnOrder::kTriangular}));

TEST(PebTree, EmptyFriendListGivesEmptyResults) {
  // Deterministic loner: 20 users, user 19 has outgoing policies removed,
  // so nobody may ever disclose to... careful: the *friend list* is the
  // set of users with a policy TOWARD the issuer. Build policies among
  // users 0..18 only; user 19 has no incoming policies -> empty friends.
  const size_t users = 20;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.seed = 11;
  Dataset ds = GenerateUniformDataset(gen);
  GeneratedPolicies gp;
  RoleId r = gp.roles.RegisterRole("friend");
  gp.friend_role = r;
  Lpp open = testing::OpenPolicy(r);
  for (UserId owner = 0; owner < 19; ++owner) {
    UserId peer = (owner + 1) % 19;  // Ring among 0..18; never 19.
    gp.store.Add(owner, peer, open);
    gp.roles.AssignRole(owner, peer, r);
  }
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant);
  ASSERT_TRUE(enc.FriendsOf(19).empty());

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{16});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  QueryStats prq_stats;
  auto prq = tree.RangeQueryWithStats(19, Rect::Space(1000), 120.0,
                                      &prq_stats);
  ASSERT_TRUE(prq.ok());
  EXPECT_TRUE(prq->empty());
  QueryStats knn_stats;
  auto knn = tree.KnnQueryWithStats(19, {500, 500}, 5, 120.0, &knn_stats);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn->empty());
  // The friend list prunes to zero before any tree descent: zero probes.
  EXPECT_EQ(prq_stats.counters.range_probes, 0u);
  EXPECT_EQ(knn_stats.counters.range_probes, 0u);
}

TEST(PebTree, MultiplePoliciesPerPairAllUnioned) {
  // The paper's future-work extension: two policies between the same pair
  // (morning-downtown and evening-suburb); the query must honor their
  // union. Exercised through the full index path, not just PolicyStore.
  Dataset ds;
  ds.objects = {
      {0, {500, 500}, {0, 0}, 0},  // Issuer.
      {1, {505, 505}, {0, 0}, 0},  // Friend, downtown.
  };
  GeneratedPolicies gp;
  RoleId r = gp.roles.RegisterRole("friend");
  Lpp morning_downtown{r, {{400, 400}, {600, 600}}, {6 * 60, 12 * 60}};
  Lpp evening_suburb{r, {{800, 800}, {1000, 1000}}, {18 * 60, 23 * 60}};
  gp.store.Add(1, 0, morning_downtown);
  gp.store.Add(1, 0, evening_suburb);
  gp.roles.AssignRole(1, 0, r);

  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, 2, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{16});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rect everywhere = Rect::Space(1000);
  // 09:00, friend downtown: first policy applies.
  auto res = tree.RangeQuery(0, everywhere, 9 * 60.0);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, (std::vector<UserId>{1}));
  // 20:00, friend downtown: evening policy covers the suburb only.
  res = tree.RangeQuery(0, everywhere, 20 * 60.0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
  // Move the friend to the suburb; now the evening policy applies...
  ASSERT_TRUE(tree.Update({1, {900, 900}, {0, 0}, 20 * 60.0}).ok());
  res = tree.RangeQuery(0, everywhere, 20 * 60.0);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, (std::vector<UserId>{1}));
  // ...but not in the morning window.
  ASSERT_TRUE(tree.Update({1, {900, 900}, {0, 0}, 9 * 60.0}).ok());
  res = tree.RangeQuery(0, everywhere, 9 * 60.0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
}

TEST(PebTree, QueriesAfterChurnStayCorrect) {
  PebWorld w = PebWorld::Build(400, 8, 0.7, 21);
  UniformUpdateStreamOptions us;
  us.seed = 22;
  UniformUpdateStream stream(w.dataset, us);
  Rng rng(23);
  Timestamp now = 120.0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 200; ++i) {
      UpdateEvent ev = stream.Next();
      ASSERT_TRUE(w.tree->Update(ev.state).ok());
      w.dataset.objects[ev.state.id] = ev.state;
      now = std::max(now, ev.t);
    }
    for (int q = 0; q < 5; ++q) {
      UserId issuer = static_cast<UserId>(rng.NextBelow(400));
      Rect range = Rect::CenteredSquare(
          {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 300);
      auto got = w.tree->RangeQuery(issuer, range, now);
      ASSERT_TRUE(got.ok());
      auto want = testing::BruteForcePrq(w.dataset, w.policies.store,
                                         w.policies.roles, issuer, range,
                                         now);
      EXPECT_EQ(*got, want) << "round " << round << " query " << q;
    }
  }
}

TEST(PebTree, RangeQueryRespectsPolicyTimeWindows) {
  // Hand-built world: 3 users; user 1 and 2 near user 0. User 1 discloses
  // all day, user 2 only during [0, 60) minutes of the day.
  Dataset ds;
  ds.objects = {
      {0, {500, 500}, {0, 0}, 0},
      {1, {510, 500}, {0, 0}, 0},
      {2, {490, 500}, {0, 0}, 0},
  };
  GeneratedPolicies gp;
  RoleId r = gp.roles.RegisterRole("friend");
  gp.friend_role = r;
  Lpp always = testing::OpenPolicy(r);
  Lpp morning = always;
  morning.tint = {0, 60};
  gp.store.Add(1, 0, always);
  gp.roles.AssignRole(1, 0, r);
  gp.store.Add(2, 0, morning);
  gp.roles.AssignRole(2, 0, r);

  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, 3, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{16});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rect range{{480, 490}, {520, 510}};
  // tq = 30 (morning): both friends visible.
  auto got = tree.RangeQuery(0, range, 30.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1, 2}));
  // tq = 100 (after user 2's window): only user 1.
  got = tree.RangeQuery(0, range, 100.0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<UserId>{1}));
}

TEST(PebTree, SpanScanCostsAtLeastAsMuchAsPerFriend) {
  // The Figure-7 literal span scan reads every user between SVmin and
  // SVmax; the per-friend strategy touches only friend buckets. Candidate
  // counts must reflect that.
  PebWorld per = PebWorld::Build(800, 10, 0.3, 31,
                                 PrqStrategy::kPerFriendIntervals);
  PebWorld span = PebWorld::Build(800, 10, 0.3, 31, PrqStrategy::kSpanScan);
  Rng rng(33);
  double per_cands = 0, span_cands = 0;
  for (int q = 0; q < 20; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(800));
    Rect range = Rect::CenteredSquare(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 300);
    QueryStats per_stats;
    auto a = per.tree->RangeQueryWithStats(issuer, range, 120.0, &per_stats);
    ASSERT_TRUE(a.ok());
    per_cands += static_cast<double>(per_stats.counters.candidates_examined);
    QueryStats span_stats;
    auto b = span.tree->RangeQueryWithStats(issuer, range, 120.0, &span_stats);
    ASSERT_TRUE(b.ok());
    span_cands += static_cast<double>(span_stats.counters.candidates_examined);
    EXPECT_EQ(*a, *b);  // Same answers.
  }
  EXPECT_LE(per_cands, span_cands);
}

TEST(PebTree, QuantizationCollisionsDoNotLoseResults) {
  // A very coarse quantizer (3 bits) forces many users into the same SV
  // bucket; results must still match brute force.
  const size_t users = 300;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 120.0;
  gen.seed = 41;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 8;
  pg.grouping_factor = 0.7;
  pg.seed = 42;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(0.05, 3);  // Nearly everything collides.
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant);

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  opt.sv_bits = 3;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rng rng(43);
  for (int q = 0; q < 15; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(users));
    Rect range = Rect::CenteredSquare(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 400);
    auto got = tree.RangeQuery(issuer, range, 120.0);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePrq(ds, gp.store, gp.roles, issuer, range,
                                       120.0);
    EXPECT_EQ(*got, want);
  }
}

TEST(PebTree, KnnWithFewerQualifyingThanK) {
  PebWorld w = PebWorld::Build(200, 3, 0.7, 51);
  Rng rng(52);
  Timestamp tq = 120.0;
  for (int q = 0; q < 10; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(200));
    Point qloc = w.dataset.objects[issuer].PositionAt(tq);
    // k far larger than any friend list.
    auto got = w.tree->KnnQuery(issuer, qloc, 50, tq);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePknn(w.dataset, w.policies.store,
                                        w.policies.roles, issuer, qloc, 50,
                                        tq);
    ASSERT_EQ(got->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR((*got)[i].distance, want[i].distance, 1e-6);
    }
  }
}

}  // namespace
}  // namespace peb
