// Configuration-independence properties: query answers are a function of
// the data and policies only — never of tuning knobs. The same workload is
// indexed under sweeps of grid resolution, buffer size, SV quantization,
// interval caps, and encoding strategy, and every configuration must
// return byte-identical answers. Plus semantic invariants of the
// privacy-aware query definitions themselves.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "engine/sharded_engine.h"
#include "eval/workload.h"
#include "motion/uniform_generator.h"
#include "motion/update_stream.h"
#include "peb/peb_tree.h"
#include "policy/policy_generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace peb {

/// Test-only corruption injection for the negative validator tests: pokes
/// holes into the pool's guarded replacement state exactly the way a bug
/// would, so the tests prove ValidateInvariants actually detects damage
/// (not merely that healthy pools pass).
struct BufferPoolTestPeer {
  /// Overwrites the pin count of the frame holding `id`; returns the old
  /// value so the test can restore it before teardown.
  static int SetPinCount(BufferPool* pool, PageId id, int value) {
    BufferPool::Shard& shard = pool->ShardOf(id);
    MutexLock lock(&shard.mu);
    return shard.frames[shard.table.at(id)]->pin_count.exchange(value);
  }

  /// Crosses the table entries of two resident pages in the same latch
  /// shard, so each maps to a frame holding the other's bytes.
  static void SwapTableEntries(BufferPool* pool, PageId a, PageId b) {
    BufferPool::Shard& shard = pool->ShardOf(a);
    ASSERT_EQ(&shard, &pool->ShardOf(b)) << "pages in different shards";
    MutexLock lock(&shard.mu);
    std::swap(shard.table.at(a), shard.table.at(b));
  }

  /// Two resident page ids in shard 0 (kInvalidPageId when fewer exist).
  static std::pair<PageId, PageId> TwoResidentPages(BufferPool* pool) {
    BufferPool::Shard& shard = *pool->shards_[0];
    MutexLock lock(&shard.mu);
    std::pair<PageId, PageId> out{kInvalidPageId, kInvalidPageId};
    for (const auto& [id, idx] : shard.table) {
      if (out.first == kInvalidPageId) {
        out.first = id;
      } else {
        out.second = id;
        break;
      }
    }
    return out;
  }
};

namespace {

struct Config {
  uint32_t grid_bits;
  size_t buffer_pages;
  double sv_scale;
  uint32_t sv_bits;
  size_t max_intervals;
  SequenceStrategy strategy;
};

class ConfigSweepTest : public ::testing::TestWithParam<Config> {};

TEST_P(ConfigSweepTest, AnswersIndependentOfTuningKnobs) {
  const Config cfg = GetParam();
  const size_t users = 400;

  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 120.0;
  gen.seed = 31;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 10;
  pg.grouping_factor = 0.6;
  pg.seed = 32;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(cfg.sv_scale, cfg.sv_bits);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant,
                                   cfg.strategy);

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{cfg.buffer_pages});
  PebTreeOptions opt;
  opt.index.grid_bits = cfg.grid_bits;
  opt.index.zrange.max_intervals = cfg.max_intervals;
  opt.sv_bits = cfg.sv_bits;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rng rng(33);
  Timestamp tq = 120.0;
  for (int q = 0; q < 15; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(users));
    Rect range = Rect::CenteredSquare(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, rng.Uniform(80, 500));
    auto got = tree.RangeQuery(issuer, range, tq);
    ASSERT_TRUE(got.ok());
    // The oracle ignores every knob: identical answers required.
    auto want = testing::BruteForcePrq(ds, gp.store, gp.roles, issuer, range,
                                       tq);
    ASSERT_EQ(*got, want) << "q=" << q;

    // Semantic invariants of Definition 2:
    for (UserId uid : *got) {
      EXPECT_NE(uid, issuer);
      // Every answer is in the issuer's friend list.
      const auto& friends = enc.FriendsOf(issuer);
      bool is_friend = false;
      for (const auto& f : friends) is_friend |= (f.uid == uid);
      EXPECT_TRUE(is_friend) << uid;
    }

    Point qloc = ds.objects[issuer].PositionAt(tq);
    auto knn = tree.KnnQuery(issuer, qloc, 4, tq);
    ASSERT_TRUE(knn.ok());
    auto want_knn =
        testing::BruteForcePknn(ds, gp.store, gp.roles, issuer, qloc, 4, tq);
    ASSERT_EQ(knn->size(), want_knn.size());
    for (size_t i = 0; i < knn->size(); ++i) {
      EXPECT_NEAR((*knn)[i].distance, want_knn[i].distance, 1e-6);
      if (i > 0) {
        // Definition 3: ascending distance.
        EXPECT_GE((*knn)[i].distance, (*knn)[i - 1].distance);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, ConfigSweepTest,
    ::testing::Values(
        // The default configuration.
        Config{10, 50, 64.0, 26, 32, SequenceStrategy::kGroupOrder},
        // Coarse and fine grids.
        Config{6, 50, 64.0, 26, 32, SequenceStrategy::kGroupOrder},
        Config{12, 50, 64.0, 26, 32, SequenceStrategy::kGroupOrder},
        // Tiny and huge buffers.
        Config{10, 4, 64.0, 26, 32, SequenceStrategy::kGroupOrder},
        Config{10, 4096, 64.0, 26, 32, SequenceStrategy::kGroupOrder},
        // Coarse and fine SV quantization.
        Config{10, 50, 1.0, 12, 32, SequenceStrategy::kGroupOrder},
        Config{10, 50, 1024.0, 26, 32, SequenceStrategy::kGroupOrder},
        // Exact (uncapped) and heavily capped window decomposition.
        Config{10, 50, 64.0, 26, 0, SequenceStrategy::kGroupOrder},
        Config{10, 50, 64.0, 26, 2, SequenceStrategy::kGroupOrder},
        // BFS encoding strategy.
        Config{10, 50, 64.0, 26, 32, SequenceStrategy::kBfsTraversal}));

TEST(QueryInvariants, PrqMonotoneInRange) {
  // A larger window can only gain answers, never lose them.
  const size_t users = 300;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 120.0;
  gen.seed = 41;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 12;
  pg.seed = 42;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rng rng(43);
  for (int q = 0; q < 10; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(users));
    Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    std::vector<UserId> prev;
    for (double side : {100.0, 250.0, 500.0, 1000.0, 2000.0}) {
      auto got = tree.RangeQuery(issuer, Rect::CenteredSquare(c, side),
                                 120.0);
      ASSERT_TRUE(got.ok());
      // prev ⊆ got.
      for (UserId u : prev) {
        EXPECT_TRUE(std::find(got->begin(), got->end(), u) != got->end())
            << "side " << side;
      }
      prev = *got;
    }
  }
}

TEST(QueryInvariants, KnnPrefixStability) {
  // The k-NN result is a prefix of the (k+1)-NN result.
  const size_t users = 300;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 120.0;
  gen.seed = 51;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 15;
  pg.seed = 52;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  Rng rng(53);
  for (int q = 0; q < 10; ++q) {
    UserId issuer = static_cast<UserId>(rng.NextBelow(users));
    Point qloc = ds.objects[issuer].PositionAt(120.0);
    std::vector<Neighbor> prev;
    for (size_t k = 1; k <= 6; ++k) {
      auto got = tree.KnnQuery(issuer, qloc, k, 120.0);
      ASSERT_TRUE(got.ok());
      ASSERT_GE(got->size(), prev.size());
      for (size_t i = 0; i < prev.size(); ++i) {
        EXPECT_NEAR((*got)[i].distance, prev[i].distance, 1e-9) << "k=" << k;
      }
      prev = *got;
    }
  }
}

TEST(QueryInvariants, ResultsUnaffectedByUnrelatedChurn) {
  // Updating users outside the issuer's friend list never changes the
  // issuer's answer (at a fixed query time).
  const size_t users = 200;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 100.0;
  gen.seed = 61;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 6;
  pg.seed = 62;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());

  const UserId issuer = 5;
  std::unordered_set<UserId> friend_set;
  for (const auto& f : enc.FriendsOf(issuer)) friend_set.insert(f.uid);

  Rect range = Rect::CenteredSquare({500, 500}, 600);
  Timestamp tq = 120.0;
  auto before = tree.RangeQuery(issuer, range, tq);
  ASSERT_TRUE(before.ok());

  // Churn every non-friend: move them all to a corner.
  Rng rng(63);
  for (UserId u = 0; u < users; ++u) {
    if (u == issuer || friend_set.contains(u)) continue;
    MovingObject moved{u, {rng.Uniform(0, 50), rng.Uniform(0, 50)}, {0, 0},
                       110.0};
    ASSERT_TRUE(tree.Update(moved).ok());
  }
  auto after = tree.RangeQuery(issuer, range, tq);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}


// ---------------------------------------------------------------------------
// Deep structural validators under randomized churn
// ---------------------------------------------------------------------------

Lpp EverywherePolicy(RoleId role) {
  Lpp p;
  p.role = role;
  p.locr = Rect{{-1e9, -1e9}, {1e9, 1e9}};
  p.tint = TimeOfDayInterval::AllDay();
  return p;
}

class EngineChurnTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EngineChurnTest, DeepValidatorsHoldUnderRandomizedChurn) {
  // Interleave update batches, policy mutations, and re-key adoptions, with
  // paranoid_checks running the validators inside every exclusive batch
  // section AND an explicit deep check after each round.
  eval::WorkloadParams p;
  p.num_users = 300;
  p.policies_per_user = 8;
  p.grouping_factor = 0.6;
  p.seed = 71;
  eval::Workload w = eval::Workload::Build(p);

  engine::EngineOptions opts;
  opts.num_shards = GetParam();
  opts.num_threads = 2;
  opts.buffer_pages = p.buffer_pages;
  opts.tree = eval::PebOptionsFor(p);
  opts.tree.index.paranoid_checks = true;
  engine::ShardedPebEngine eng(opts, &w.store(), &w.roles(),
                               w.catalog()->snapshot());
  ASSERT_TRUE(eng.LoadDataset(w.dataset()).ok());

  auto stream = eval::CloneUniformUpdateStream(w);
  ASSERT_NE(stream, nullptr);
  RoleId role = w.catalog()->DefineRole("churn");

  Rng rng(72);
  for (int round = 0; round < 4; ++round) {
    std::vector<UpdateEvent> batch;
    for (int i = 0; i < 64; ++i) batch.push_back(stream->Next());
    ASSERT_TRUE(eng.ApplyBatch(batch).ok()) << "round " << round;

    for (int m = 0; m < 6; ++m) {
      UserId owner = static_cast<UserId>(rng.NextBelow(p.num_users));
      UserId peer = static_cast<UserId>(rng.NextBelow(p.num_users));
      if (owner == peer) continue;
      if (m % 3 == 2) {
        ASSERT_TRUE(w.catalog()->RemovePolicies(owner, peer).ok());
      } else {
        ASSERT_TRUE(
            w.catalog()->AddPolicy(owner, peer, EverywherePolicy(role)).ok());
      }
    }
    auto re = w.catalog()->Reencode();
    ASSERT_TRUE(re.ok()) << re.status().ToString();
    ASSERT_TRUE(eng.AdoptSnapshot(re->snapshot, &re->rekeyed).ok())
        << "round " << round;

    Status deep = eng.ValidateInvariants();
    ASSERT_TRUE(deep.ok()) << "round " << round << ": " << deep.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, EngineChurnTest, ::testing::Values(1, 4),
                         [](const auto& param_info) {
                           return param_info.param == 1 ? "OneShard"
                                                        : "FourShards";
                         });

// ---------------------------------------------------------------------------
// Negative validation: the validators must DETECT deliberate damage, not
// merely pass on healthy structures.
// ---------------------------------------------------------------------------

TEST(NegativeValidation, DetectsCorruptedLeafChain) {
  const size_t users = 400;
  UniformGeneratorOptions gen;
  gen.num_objects = users;
  gen.stagger_window = 120.0;
  gen.seed = 81;
  Dataset ds = GenerateUniformDataset(gen);
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = 8;
  pg.seed = 82;
  GeneratedPolicies gp = GeneratePolicies(pg);
  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto enc = PolicyEncoding::Build(gp.store, users, compat, {}, quant);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  PebTreeOptions opt;
  opt.index.grid_bits = 8;
  PebTree tree(&pool, opt, &gp.store, &gp.roles, &enc);
  for (const auto& o : ds.objects) ASSERT_TRUE(tree.Insert(o).ok());
  ASSERT_TRUE(tree.ValidateInvariants().ok());

  // Find a leaf page (node type 1) with a live sibling pointer and point
  // its next-link at itself — a damage pattern no healthy chain contains.
  PageId leaf = kInvalidPageId;
  PageId old_next = kInvalidPageId;
  for (PageId id = 0;; ++id) {
    auto g = pool.FetchPage(id);
    if (!g.ok()) break;
    const Page& page = *g->page();
    if (page.ReadAt<uint8_t>(0) == 1 &&
        page.ReadAt<PageId>(8) != kInvalidPageId) {
      leaf = id;
      old_next = page.ReadAt<PageId>(8);
      g->page()->WriteAt<PageId>(8, id);
      g->MarkDirty();
      break;
    }
  }
  ASSERT_NE(leaf, kInvalidPageId) << "no chained leaf found";

  Status st = tree.ValidateInvariants();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();

  // Repair and re-validate: the detector must go quiet again (proves the
  // failure came from the injected damage, not a latent defect).
  auto g = pool.FetchPage(leaf);
  ASSERT_TRUE(g.ok());
  g->page()->WriteAt<PageId>(8, old_next);
  g->MarkDirty();
  g->Release();
  EXPECT_TRUE(tree.ValidateInvariants().ok());
}

TEST(NegativeValidation, DetectsCorruptedPinCountAndFrameTable) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{8});
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    ids.push_back(g->id());
  }
  ASSERT_TRUE(pool.ValidateInvariants().ok());

  // A negative pin count can only come from an unbalanced unpin.
  int old_pin = BufferPoolTestPeer::SetPinCount(&pool, ids[0], -3);
  Status st = pool.ValidateInvariants();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  BufferPoolTestPeer::SetPinCount(&pool, ids[0], old_pin);
  ASSERT_TRUE(pool.ValidateInvariants().ok());

  // Crossed table entries: each page id resolves to a frame holding the
  // other page's bytes.
  auto [a, b] = BufferPoolTestPeer::TwoResidentPages(&pool);
  ASSERT_NE(a, kInvalidPageId);
  ASSERT_NE(b, kInvalidPageId);
  BufferPoolTestPeer::SwapTableEntries(&pool, a, b);
  st = pool.ValidateInvariants();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  BufferPoolTestPeer::SwapTableEntries(&pool, a, b);
  EXPECT_TRUE(pool.ValidateInvariants().ok());
}

}  // namespace
}  // namespace peb
